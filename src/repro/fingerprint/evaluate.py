"""Website fingerprinting evaluation: train/test over the catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..chain import paper_tuned_frequency_hz, render_capture, tuned_frequency_hz
from ..em.environment import Scenario, near_field_scenario
from ..exec.pool import parallel_map
from ..obs.metrics import get_metrics
from ..osmodel import interrupts as irq
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION, Machine
from .classifier import NearestCentroidClassifier, accuracy, confusion_matrix
from .features import ActivityFeatureExtractor
from .workloads import WebsiteProfile, default_catalog


@dataclass
class FingerprintResult:
    """Scores of one fingerprinting run."""

    accuracy: float
    confusion: np.ndarray
    labels: List[str]
    n_train: int
    n_test: int


@dataclass
class FingerprintExperiment:
    """Website fingerprinting through the PMU emission.

    For each site in the catalog, render several page loads through the
    analog chain, extract activity-shape features, train a classifier
    on part of them and score the rest.
    """

    machine: Machine = DELL_PRECISION
    scenario: Optional[Scenario] = None
    profile: SimProfile = KEYLOG
    catalog: Sequence[WebsiteProfile] = field(default_factory=default_catalog)
    seed: int = 0

    def _scenario(self) -> Scenario:
        if self.scenario is not None:
            return self.scenario
        return near_field_scenario(
            tuned_frequency_hz(self.machine, self.profile),
            physics_frequency_hz=paper_tuned_frequency_hz(self.machine),
        )

    def capture_load(
        self, site: WebsiteProfile, rng: np.random.Generator
    ):
        """Render one page load into an IQ capture."""
        activity = site.sample(rng)
        system = irq.generate(
            self.machine.interrupt_profile,
            activity.duration,
            rng,
            time_scale=self.profile.time_scale,
        )
        activity = activity.merged_with(system)
        return render_capture(
            self.machine, activity, self._scenario(), self.profile, rng
        )

    def run(
        self,
        loads_per_site: int = 6,
        train_fraction: float = 0.5,
        jobs: Optional[int] = None,
    ) -> FingerprintResult:
        """Full experiment: capture, featurise, train, score.

        Each page load is an independent trial with its own RNG stream
        spawned from ``self.seed`` (``SeedSequence.spawn``), so the
        (site x load) grid fans out over workers and produces the same
        features at any worker count.
        """
        if loads_per_site < 2:
            raise ValueError("need at least 2 loads per site")
        children = np.random.SeedSequence(self.seed).spawn(
            len(self.catalog) * loads_per_site
        )
        tasks = []
        labels: List[str] = []
        for s, site in enumerate(self.catalog):
            for load in range(loads_per_site):
                tasks.append((self, site, children[s * loads_per_site + load]))
                labels.append(site.name)
        features = parallel_map(_capture_features, tasks, jobs=jobs)
        features_arr = np.array(features)
        n_train = max(int(loads_per_site * train_fraction), 1)
        train_idx, test_idx = [], []
        for s in range(len(self.catalog)):
            base = s * loads_per_site
            train_idx.extend(range(base, base + n_train))
            test_idx.extend(range(base + n_train, base + loads_per_site))
        clf = NearestCentroidClassifier().fit(
            features_arr[train_idx], [labels[i] for i in train_idx]
        )
        predicted = clf.predict(features_arr[test_idx])
        true = [labels[i] for i in test_idx]
        matrix, label_order = confusion_matrix(true, predicted)
        score = accuracy(true, predicted)
        registry = get_metrics()
        if registry is not None:
            registry.histogram("fingerprint.accuracy").observe(score)
        return FingerprintResult(
            accuracy=score,
            confusion=matrix,
            labels=label_order,
            n_train=len(train_idx),
            n_test=len(test_idx),
        )


def _capture_features(
    task: Tuple[FingerprintExperiment, WebsiteProfile, np.random.SeedSequence]
) -> np.ndarray:
    """Render one page load and extract its features (worker-safe)."""
    experiment, site, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    capture = experiment.capture_load(site, rng)
    extractor = ActivityFeatureExtractor(
        experiment.machine.vrm_frequency_hz
        / experiment.profile.total_freq_divisor
    )
    return extractor.features(capture)
