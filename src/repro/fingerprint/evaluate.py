"""Website fingerprinting evaluation: train/test over the catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..chain import paper_tuned_frequency_hz, render_capture, tuned_frequency_hz
from ..em.environment import Scenario, near_field_scenario
from ..osmodel import interrupts as irq
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION, Machine
from .classifier import NearestCentroidClassifier, accuracy, confusion_matrix
from .features import ActivityFeatureExtractor
from .workloads import WebsiteProfile, default_catalog


@dataclass
class FingerprintResult:
    """Scores of one fingerprinting run."""

    accuracy: float
    confusion: np.ndarray
    labels: List[str]
    n_train: int
    n_test: int


@dataclass
class FingerprintExperiment:
    """Website fingerprinting through the PMU emission.

    For each site in the catalog, render several page loads through the
    analog chain, extract activity-shape features, train a classifier
    on part of them and score the rest.
    """

    machine: Machine = DELL_PRECISION
    scenario: Optional[Scenario] = None
    profile: SimProfile = KEYLOG
    catalog: Sequence[WebsiteProfile] = field(default_factory=default_catalog)
    seed: int = 0

    def _scenario(self) -> Scenario:
        if self.scenario is not None:
            return self.scenario
        return near_field_scenario(
            tuned_frequency_hz(self.machine, self.profile),
            physics_frequency_hz=paper_tuned_frequency_hz(self.machine),
        )

    def capture_load(
        self, site: WebsiteProfile, rng: np.random.Generator
    ):
        """Render one page load into an IQ capture."""
        activity = site.sample(rng)
        system = irq.generate(
            self.machine.interrupt_profile,
            activity.duration,
            rng,
            time_scale=self.profile.time_scale,
        )
        activity = activity.merged_with(system)
        return render_capture(
            self.machine, activity, self._scenario(), self.profile, rng
        )

    def run(
        self, loads_per_site: int = 6, train_fraction: float = 0.5
    ) -> FingerprintResult:
        """Full experiment: capture, featurise, train, score."""
        if loads_per_site < 2:
            raise ValueError("need at least 2 loads per site")
        rng = np.random.default_rng(self.seed)
        extractor = ActivityFeatureExtractor(
            self.machine.vrm_frequency_hz / self.profile.total_freq_divisor
        )
        features: List[np.ndarray] = []
        labels: List[str] = []
        for site in self.catalog:
            for _ in range(loads_per_site):
                capture = self.capture_load(site, rng)
                features.append(extractor.features(capture))
                labels.append(site.name)
        features_arr = np.array(features)
        n_train = max(int(loads_per_site * train_fraction), 1)
        train_idx, test_idx = [], []
        for s in range(len(self.catalog)):
            base = s * loads_per_site
            train_idx.extend(range(base, base + n_train))
            test_idx.extend(range(base + n_train, base + loads_per_site))
        clf = NearestCentroidClassifier().fit(
            features_arr[train_idx], [labels[i] for i in train_idx]
        )
        predicted = clf.predict(features_arr[test_idx])
        true = [labels[i] for i in test_idx]
        matrix, label_order = confusion_matrix(true, predicted)
        return FingerprintResult(
            accuracy=accuracy(true, predicted),
            confusion=matrix,
            labels=label_order,
            n_train=len(train_idx),
            n_test=len(test_idx),
        )
