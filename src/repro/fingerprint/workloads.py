"""Synthetic page-load workloads for website fingerprinting.

Section III's attack model: "the attacker can monitor these signals to
infer how long the processor was active to process a certain task.
Such information, for example, can be used for website fingerprinting".

A page load produces a characteristic processor-activity signature:
network waits (idle), an HTML parse burst, script-execution bursts and
a layout/render burst.  Different sites differ in how many resources
they fetch, how much script they run and how long layout takes, so the
*shape* of the activity trace identifies the site.  This module defines
parametric site profiles and samples activity traces from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..types import ActivityTrace, Interval


@dataclass(frozen=True)
class LoadPhase:
    """One phase of a page load.

    ``burst_s`` is the mean CPU burst for this phase, ``gap_s`` the mean
    idle wait before it (network latency / queueing); ``repeat`` models
    per-resource repetition (e.g. one script burst per fetched script).
    """

    name: str
    burst_s: float
    gap_s: float
    repeat: int = 1
    jitter_rel: float = 0.25

    def __post_init__(self) -> None:
        if self.burst_s <= 0 or self.gap_s < 0:
            raise ValueError("phase durations must be positive")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")


@dataclass(frozen=True)
class WebsiteProfile:
    """A website's load signature: an ordered list of phases."""

    name: str
    phases: Tuple[LoadPhase, ...]

    def sample(
        self, rng: np.random.Generator, settle_s: float = 0.4
    ) -> ActivityTrace:
        """Draw one page load as an activity trace.

        ``settle_s`` of trailing idle is appended (the tab going quiet),
        so captures include the end of the load.
        """
        intervals: List[Interval] = []
        t = 0.1  # brief initial idle before the click lands
        for phase in self.phases:
            for _ in range(phase.repeat):
                gap = phase.gap_s * _jitter(rng, phase.jitter_rel)
                t += gap
                burst = phase.burst_s * _jitter(rng, phase.jitter_rel)
                intervals.append(Interval(t, t + burst))
                t += burst
        return ActivityTrace(intervals, t + settle_s)

    @property
    def nominal_load_s(self) -> float:
        """Expected wall time of one load."""
        return 0.1 + sum(
            (p.gap_s + p.burst_s) * p.repeat for p in self.phases
        )


def _jitter(rng: np.random.Generator, rel: float) -> float:
    return max(1.0 + rel * float(rng.standard_normal()), 0.25)


def default_catalog() -> List[WebsiteProfile]:
    """Eight synthetic sites spanning light static pages to heavy apps."""
    return [
        WebsiteProfile(
            "static-blog",
            (
                LoadPhase("parse", 0.10, 0.12),
                LoadPhase("render", 0.08, 0.05),
            ),
        ),
        WebsiteProfile(
            "news-site",
            (
                LoadPhase("parse", 0.15, 0.10),
                LoadPhase("scripts", 0.06, 0.08, repeat=4),
                LoadPhase("render", 0.12, 0.04),
            ),
        ),
        WebsiteProfile(
            "social-feed",
            (
                LoadPhase("parse", 0.10, 0.08),
                LoadPhase("scripts", 0.09, 0.05, repeat=6),
                LoadPhase("render", 0.10, 0.03),
                LoadPhase("lazy-load", 0.07, 0.25, repeat=2),
            ),
        ),
        WebsiteProfile(
            "video-portal",
            (
                LoadPhase("parse", 0.12, 0.10),
                LoadPhase("scripts", 0.08, 0.06, repeat=3),
                LoadPhase("player-init", 0.30, 0.15),
                LoadPhase("buffer", 0.05, 0.30, repeat=3),
            ),
        ),
        WebsiteProfile(
            "webmail",
            (
                LoadPhase("parse", 0.08, 0.08),
                LoadPhase("app-boot", 0.40, 0.10),
                LoadPhase("inbox-fetch", 0.10, 0.20, repeat=2),
            ),
        ),
        WebsiteProfile(
            "shopping",
            (
                LoadPhase("parse", 0.14, 0.10),
                LoadPhase("scripts", 0.07, 0.07, repeat=5),
                LoadPhase("images", 0.04, 0.06, repeat=6),
                LoadPhase("render", 0.14, 0.04),
            ),
        ),
        WebsiteProfile(
            "maps",
            (
                LoadPhase("parse", 0.09, 0.08),
                LoadPhase("app-boot", 0.28, 0.08),
                LoadPhase("tiles", 0.05, 0.08, repeat=8),
            ),
        ),
        WebsiteProfile(
            "bank-login",
            (
                LoadPhase("parse", 0.07, 0.15),
                LoadPhase("crypto", 0.22, 0.10),
                LoadPhase("render", 0.06, 0.05),
            ),
        ),
    ]
