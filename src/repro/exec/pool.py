"""Trial fan-out: ``parallel_map`` over independent, seed-carrying tasks.

The one rule that makes worker count irrelevant to results: *tasks own
their seeds*.  Callers derive every trial's seed (or payload) up front,
serially, and pass it inside the task; workers never share an RNG
stream.  ``parallel_map`` then preserves input order, so the reduction
on the caller's side sees exactly the sequence a serial run produces.
"""

from __future__ import annotations

import os
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import replace
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs.metrics import get_metrics, metrics_active, metrics_scope
from ..obs.trace import (
    collect_events,
    merge_events,
    span,
    trace_event,
    tracing_active,
)
from .context import (
    ExecutionConfig,
    get_execution_config,
    set_execution_config,
)
from .executor import effective_cpus
from .timing import collect_timings, merge_timings

T = TypeVar("T")
R = TypeVar("R")

#: Per-task pickle payloads above this are assumed to dwarf the compute
#: they carry; ``parallel_map`` degrades to serial rather than shuttle
#: them through the pipe.  Callers with genuinely heavy tasks should
#: move arrays through :mod:`repro.exec.shm` and pass small tokens.
_PICKLE_BYTES_CEILING = 1 << 25  # 32 MiB

#: ExecutionConfig instances (by identity) that already produced the
#: serial-fallback warning.  A sweep retries the pool once per trial
#: group, which under a no-fork sandbox used to mean one identical
#: warning per group; the condition is a property of the environment
#: for the lifetime of the config, so warn once per config instance
#: (a new execution scope warns again) and keep only the structured
#: trace event per occurrence.
_serial_fallback_warned: "weakref.WeakValueDictionary[int, ExecutionConfig]" = (
    weakref.WeakValueDictionary()
)


def _first_fallback_for(config: ExecutionConfig) -> bool:
    """True exactly once per live config instance."""
    key = id(config)
    if _serial_fallback_warned.get(key) is config:
        return False
    _serial_fallback_warned[key] = config
    return True


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else the active config."""
    if jobs is None:
        jobs = get_execution_config().jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


def _init_worker(config: ExecutionConfig) -> None:
    # Workers run their trials serially: a worker spawning its own pool
    # would oversubscribe and can deadlock on nested executors.
    set_execution_config(replace(config, jobs=1))


def _worker_call(
    fn: Callable[[T], R], item: T, want_trace: bool, want_metrics: bool
) -> Tuple[R, dict, List[dict], Optional[dict]]:
    # ContextVars don't cross the process boundary, so the parent tells
    # each task whether to buffer events/metrics for merging on return.
    events: List[dict] = []
    snapshot: Optional[dict] = None
    with ExitStack() as stack:
        timings = stack.enter_context(collect_timings())
        if want_trace:
            events = stack.enter_context(collect_events())
        registry = (
            stack.enter_context(metrics_scope()) if want_metrics else None
        )
        result = fn(item)
    if registry is not None:
        snapshot = registry.snapshot()
    return result, dict(timings), events, snapshot


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    bytes_hint: int = 0,
) -> List[R]:
    """Apply ``fn`` to every item, fanning out over worker processes.

    Parameters
    ----------
    fn:
        A module-level callable (it crosses the process boundary).
    items:
        The tasks.  Each must carry everything its trial needs,
        including its seed; tasks and results are pickled.
    jobs:
        Worker count; None reads the active :class:`ExecutionConfig`.
        ``1`` runs serially in-process with no pickling at all - the
        reference path.
    bytes_hint:
        Estimated pickled bytes per task (payload + result).  When the
        payload dwarfs the compute a fork cannot pay for itself; see
        the degradation guard below.

    Results are returned in input order.  Stage timings recorded inside
    workers are merged into the caller's active collector.

    Single-CPU guard (BENCH_parallel.json pathology): when the host has
    one effective CPU, fork + pickle overhead cannot be hidden behind
    concurrency - a pool is strictly slower than the serial reference
    path, for identical results.  Likewise when ``bytes_hint`` says each
    task moves tens of megabytes through the pickle pipe.  Both cases
    degrade to serial with a structured trace event (no warning: the
    degradation is a correct scheduling decision, not a failure).
    """
    tasks: Sequence[T] = list(items)
    n_jobs = min(resolve_jobs(jobs), max(len(tasks), 1))
    if n_jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    cpus = effective_cpus()
    if cpus <= 1 or bytes_hint >= _PICKLE_BYTES_CEILING:
        trace_event(
            "warning",
            kind=(
                "pool-single-cpu" if cpus <= 1 else "pool-pickle-bound"
            ),
            jobs=n_jobs,
            tasks=len(tasks),
            cpus=cpus,
            bytes_hint=int(bytes_hint),
        )
        # Same span the pool path emits: degradation changes the
        # scheduling, not the caller-visible trace shape.
        with span("parallel_map", {"jobs": 1, "tasks": len(tasks)}):
            return [fn(task) for task in tasks]
    config = get_execution_config()
    try:
        executor = ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_init_worker,
            initargs=(config,),
        )
    except (OSError, PermissionError) as exc:
        # Environments without working process support (restricted
        # sandboxes) degrade to the serial reference path.  Results are
        # identical (tasks own their seeds) but wall-clock is not, so
        # say so instead of silently eating the requested parallelism -
        # but only once per execution config: every call in the same
        # scope hits the same environmental limitation.
        if _first_fallback_for(config):
            warnings.warn(
                f"parallel_map: cannot start a process pool ({exc!r}); "
                f"running {len(tasks)} task(s) serially instead of with "
                f"jobs={n_jobs}",
                RuntimeWarning,
                stacklevel=2,
            )
        trace_event(
            "warning",
            kind="pool-serial-fallback",
            jobs=n_jobs,
            tasks=len(tasks),
            error=repr(exc),
        )
        return [fn(task) for task in tasks]
    want_trace = tracing_active()
    want_metrics = metrics_active()
    with executor, span(
        "parallel_map", {"jobs": n_jobs, "tasks": len(tasks)}
    ):
        futures = [
            executor.submit(_worker_call, fn, task, want_trace, want_metrics)
            for task in tasks
        ]
        results: List[R] = []
        for future in futures:
            result, timings, events, snapshot = future.result()
            merge_timings(timings)
            if events:
                merge_events(events)
            if snapshot is not None:
                registry = get_metrics()
                if registry is not None:
                    registry.merge_snapshot(snapshot)
            results.append(result)
    return results


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this host (all visible CPUs)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1
