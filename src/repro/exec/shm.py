"""Shared-memory transport for large arrays between processes.

Pickling an ``IQCapture`` through a process pool's pipe copies every
sample twice (serialise + deserialise).  For multi-megabyte captures the
copy dwarfs the compute being parallelised — the pathology recorded in
``BENCH_parallel.json``.  This module moves the samples through POSIX
shared memory instead: the parent :func:`share_array`\\ s the ndarray
once, ships a tiny :class:`ShmToken` (name + shape + dtype) through the
pickle pipe, and workers :func:`load_array` a zero-copy view.

Lifetime is parent-managed: tokens are created inside a
:class:`ShmArena` context manager, which closes and unlinks every
segment on exit regardless of worker outcome.  Workers only ever
``close()`` their attach handle (``load_array(copy=True)`` does this
internally), never ``unlink``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from ..types import IQCapture


@dataclass(frozen=True)
class ShmToken:
    """A picklable handle to one ndarray living in shared memory."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmCapture:
    """A picklable :class:`~repro.types.IQCapture` minus its samples."""

    token: ShmToken
    sample_rate: float
    center_frequency: float

    def load(self) -> IQCapture:
        samples = load_array(self.token, copy=True)
        return IQCapture(
            samples=samples,
            sample_rate=self.sample_rate,
            center_frequency=self.center_frequency,
        )


class ShmArena:
    """Owns a set of shared-memory segments for one fan-out.

    Usage::

        with ShmArena() as arena:
            tokens = [arena.share_capture(c) for c in captures]
            results = parallel_map(worker, tokens, jobs=n)
        # all segments closed + unlinked here
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []

    def share_array(self, array: np.ndarray) -> ShmToken:
        array = np.ascontiguousarray(array)
        nbytes = max(int(array.nbytes), 1)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(seg)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
        view[...] = array
        return ShmToken(name=seg.name, shape=tuple(array.shape), dtype=str(array.dtype))

    def share_capture(self, capture: IQCapture) -> ShmCapture:
        return ShmCapture(
            token=self.share_array(capture.samples),
            sample_rate=capture.sample_rate,
            center_frequency=capture.center_frequency,
        )

    def close(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


def load_array(token: ShmToken, *, copy: bool = True) -> np.ndarray:
    """Attach to a shared segment and return a private copy of its array.

    The attach handle is closed before returning, so the caller holds an
    ordinary array and the parent remains free to unlink the segment at
    any time.  (``copy=False`` is rejected: a zero-copy view would need
    the attach handle kept alive past this call, which inverts the
    parent-managed lifetime contract.)
    """
    if not copy:
        raise ValueError("zero-copy views would outlive the attach handle")
    seg = shared_memory.SharedMemory(name=token.name)
    try:
        view = np.ndarray(token.shape, dtype=np.dtype(token.dtype), buffer=seg.buf)
        return view.copy()
    finally:
        seg.close()
