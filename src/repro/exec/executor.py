"""Adaptive executor selection: batched-serial / threads / processes.

``parallel_map`` fans homogeneous trials over a process pool - the right
call on a many-core box with small task payloads, and exactly the wrong
one on a single CPU, where fork + pickle overhead is pure loss
(``BENCH_parallel.json``: the table2 harness ran 24% *slower* at
``--jobs 4`` than serially on a 1-CPU host).  This module centralises
that judgement: :func:`choose_executor` looks at the job shape (task
count, per-task array bytes, whether a trial-major batched kernel
exists) and the host (:func:`effective_cpus`) and returns an explicit
:class:`ExecutorDecision` instead of blindly honouring ``--jobs``.

The decision table (DESIGN.md §14):

===========================  ============================================
condition                    decision
===========================  ============================================
``tasks <= 1``               serial (batched-serial when a kernel exists)
``jobs <= 1``                serial / batched-serial - the reference path
``cpus <= 1``                batched-serial: fork cannot be hidden
numpy-bound + huge arrays    threads: kernels drop the GIL, arrays shared
otherwise                    processes via :func:`parallel_map`; payloads
                             above ``SHM_BYTES_PER_TASK`` travel through
                             :mod:`repro.exec.shm`, not pickle
===========================  ============================================

Every decision is traced (``batch.executor`` event) so a sweep's
manifest can say *why* it ran the way it did.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextvars import copy_context
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs.trace import span, trace_event
from .context import get_execution_config

T = TypeVar("T")
R = TypeVar("R")

#: Above this many pickled bytes per task, a process pool must move the
#: payload through shared memory rather than the pickle pipe.
SHM_BYTES_PER_TASK = 1 << 20  # 1 MiB

#: Above this total payload, prefer GIL-dropping threads over processes
#: for numpy-bound work: the kernels release the GIL and the arrays are
#: shared for free.
THREAD_BYTES_TOTAL = 1 << 26  # 64 MiB


def effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware).

    Overridable in tests (monkeypatch this name) so the fork paths stay
    exercised on single-CPU CI hosts.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutorDecision:
    """One resolved scheduling decision.

    Attributes
    ----------
    mode:
        ``"batched-serial"`` / ``"serial"`` / ``"threads"`` /
        ``"processes"``.
    jobs:
        Worker count the chosen mode should use (1 for serial modes).
    transport:
        How task payloads travel: ``"none"`` (in-process), ``"pickle"``
        or ``"shm"`` (shared-memory arrays, :mod:`repro.exec.shm`).
    reason:
        Human-readable justification, recorded in traces and manifests.
    tasks / cpus / bytes_per_task:
        The inputs the decision was made from.
    """

    mode: str
    jobs: int
    transport: str
    reason: str
    tasks: int
    cpus: int
    bytes_per_task: int

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "transport": self.transport,
            "reason": self.reason,
            "tasks": self.tasks,
            "cpus": self.cpus,
            "bytes_per_task": self.bytes_per_task,
        }


def choose_executor(
    tasks: int,
    *,
    jobs: Optional[int] = None,
    bytes_per_task: int = 0,
    numpy_bound: bool = False,
    batchable: bool = False,
) -> ExecutorDecision:
    """Pick an execution mode from the job shape and the host.

    Parameters
    ----------
    tasks:
        Number of independent tasks to run.
    jobs:
        Requested worker count; ``None`` reads the active
        :class:`~repro.exec.context.ExecutionConfig`.
    bytes_per_task:
        Estimated array payload each task carries (e.g. one
        ``IQCapture``'s ``nbytes``); steers pickle vs shared memory.
    numpy_bound:
        True when the per-task work is dominated by GIL-dropping numpy
        kernels, making a thread pool a real option.
    batchable:
        True when a trial-major batched kernel exists for this work, so
        the serial modes report ``batched-serial`` rather than plain
        ``serial``.
    """
    if jobs is None:
        jobs = get_execution_config().jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cpus = effective_cpus()
    serial_mode = "batched-serial" if batchable else "serial"

    def decide(mode: str, n_jobs: int, transport: str, reason: str):
        decision = ExecutorDecision(
            mode=mode,
            jobs=n_jobs,
            transport=transport,
            reason=reason,
            tasks=tasks,
            cpus=cpus,
            bytes_per_task=int(bytes_per_task),
        )
        trace_event("batch.executor", **decision.as_dict())
        return decision

    if tasks <= 1:
        return decide(serial_mode, 1, "none", "nothing to fan out")
    if jobs <= 1:
        return decide(serial_mode, 1, "none", "serial requested (jobs=1)")
    if cpus <= 1:
        return decide(
            serial_mode,
            1,
            "none",
            "single CPU: fork+pickle overhead cannot be hidden",
        )
    n_jobs = min(jobs, cpus, tasks)
    total_bytes = int(bytes_per_task) * tasks
    if numpy_bound and total_bytes >= THREAD_BYTES_TOTAL:
        return decide(
            "threads",
            n_jobs,
            "none",
            "numpy-bound with large arrays: share memory, drop the GIL",
        )
    transport = "shm" if bytes_per_task >= SHM_BYTES_PER_TASK else "pickle"
    return decide(
        "processes",
        n_jobs,
        transport,
        "multiple CPUs and picklable tasks",
    )


class BatchExecutor:
    """Run homogeneous tasks under an :class:`ExecutorDecision`.

    The serial modes run in-process (the caller's batched kernels do the
    real vectorisation); ``threads`` uses a thread pool with per-task
    context copies so obs taps keep working; ``processes`` delegates to
    :func:`repro.exec.pool.parallel_map`, which already merges worker
    metrics/trace/timings and degrades safely.
    """

    def __init__(self, decision: ExecutorDecision):
        self.decision = decision

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        d = self.decision
        with span(
            "batch.execute",
            {"mode": d.mode, "jobs": d.jobs, "tasks": len(items)},
        ):
            if d.mode in ("serial", "batched-serial"):
                return [fn(item) for item in items]
            if d.mode == "threads":
                # Each task runs under its own copy of the caller's
                # context, so ContextVar-based taps (metrics, trace,
                # timings) see the active collectors.  The registries
                # themselves are shared objects; numpy-bound tasks
                # serialise on the GIL only for the cheap tap calls.
                contexts = [copy_context() for _ in items]
                with ThreadPoolExecutor(max_workers=d.jobs) as pool:
                    futures = [
                        pool.submit(ctx.run, fn, item)
                        for ctx, item in zip(contexts, items)
                    ]
                    return [future.result() for future in futures]
            if d.mode == "processes":
                from .pool import parallel_map

                return parallel_map(fn, items, jobs=d.jobs)
            raise ValueError(f"unknown executor mode {d.mode!r}")
