"""Execution subsystem: trial fan-out, chain caching, stage timing.

Three cooperating layers, shared by every harness that runs independent
seed-controlled trials over the analog chain:

* :mod:`repro.exec.context` - the process-wide :class:`ExecutionConfig`
  (worker count, cache settings).  The CLI writes it; harnesses read it.
* :mod:`repro.exec.pool` - :func:`parallel_map`, the single fan-out
  primitive.  Process-based at ``jobs > 1`` with a deterministic serial
  fallback at ``jobs = 1``; output order always matches input order.
* :mod:`repro.exec.cache` - a content-addressed cache for expensive
  chain intermediates (power-state trace, burst train, emission
  waveform), keyed by a stable hash of everything that determines them,
  including the RNG state on entry.
* :mod:`repro.exec.executor` - the adaptive :class:`BatchExecutor`:
  :func:`choose_executor` picks batched-serial / threads / processes
  from the job shape (task count, array bytes, CPU budget) so callers
  state *what* to fan out, not *how*.
* :mod:`repro.exec.shm` - shared-memory transport for large arrays
  (captures travel to workers as segment tokens, not pickled values).
* :mod:`repro.exec.timing` - per-stage wall-clock accounting that
  survives the process boundary, so experiment reports can say where
  their time went even when trials ran in workers.
"""

from .cache import ChainCache, fingerprint, get_chain_cache, reset_chain_cache
from .context import (
    ExecutionConfig,
    execution_scope,
    get_execution_config,
    set_execution_config,
)
from .executor import (
    BatchExecutor,
    ExecutorDecision,
    choose_executor,
    effective_cpus,
)
from .pool import parallel_map
from .shm import ShmArena, ShmCapture, ShmToken, load_array
from .timing import collect_timings, merge_timings, record_stage, stage

__all__ = [
    "BatchExecutor",
    "ChainCache",
    "ExecutionConfig",
    "ExecutorDecision",
    "ShmArena",
    "ShmCapture",
    "ShmToken",
    "choose_executor",
    "collect_timings",
    "effective_cpus",
    "execution_scope",
    "fingerprint",
    "get_chain_cache",
    "get_execution_config",
    "load_array",
    "merge_timings",
    "parallel_map",
    "record_stage",
    "reset_chain_cache",
    "set_execution_config",
    "stage",
]
