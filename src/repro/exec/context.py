"""Process-wide execution configuration.

A single :class:`ExecutionConfig` governs how much parallelism the
harnesses may use and how the chain cache behaves.  It lives in a
:mod:`contextvars` variable so nested scopes (and the worker processes,
which get a copy through the pool initializer) see a consistent value
without every function signature threading ``jobs=`` downward.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional

#: Default in-memory cache budget (bytes).  Emission waveforms in the
#: stock profiles are a few MB each, so this holds dozens of trials.
DEFAULT_CACHE_BYTES = 256 * 2**20

_UNSET = object()


@dataclass(frozen=True)
class ExecutionConfig:
    """How trials execute: worker count and cache policy.

    Attributes
    ----------
    jobs:
        Worker processes for :func:`repro.exec.pool.parallel_map`.
        ``1`` (the default) runs every trial serially in-process, which
        is the reference execution order; results are bit-identical at
        any worker count because trial seeds are derived up front.
    cache_enabled:
        Master switch for the content-addressed chain cache.
    cache_dir:
        Optional on-disk cache directory, shared between processes and
        across runs.  ``None`` keeps the cache in memory only.
    cache_bytes:
        In-memory LRU budget in bytes.
    """

    jobs: int = 1
    cache_enabled: bool = True
    cache_dir: Optional[str] = None
    cache_bytes: int = DEFAULT_CACHE_BYTES

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")


_config: ContextVar[ExecutionConfig] = ContextVar(
    "repro_execution_config", default=ExecutionConfig()
)


def get_execution_config() -> ExecutionConfig:
    """The active execution configuration."""
    return _config.get()


def set_execution_config(config: ExecutionConfig) -> None:
    """Install ``config`` as the active configuration."""
    _config.set(config)


@contextmanager
def execution_scope(
    *,
    jobs: Any = _UNSET,
    cache_enabled: Any = _UNSET,
    cache_dir: Any = _UNSET,
    cache_bytes: Any = _UNSET,
) -> Iterator[ExecutionConfig]:
    """Temporarily override parts of the execution configuration.

    Fields left at their sentinel default inherit the enclosing scope,
    so ``execution_scope(jobs=4)`` changes only the worker count.
    """
    changes = {
        key: value
        for key, value in (
            ("jobs", jobs),
            ("cache_enabled", cache_enabled),
            ("cache_dir", cache_dir),
            ("cache_bytes", cache_bytes),
        )
        if value is not _UNSET
    }
    new = replace(_config.get(), **changes)
    token = _config.set(new)
    try:
        yield new
    finally:
        _config.reset(token)
