"""Per-stage wall-clock accounting.

``chain.py`` brackets each expensive stage with :func:`stage`; a
harness (the experiment runner, a benchmark) opens a
:func:`collect_timings` scope around the whole run and gets back a
``{stage: seconds}`` dict.  When trials run in worker processes, the
pool captures each worker's stage dict alongside the result and merges
it into the parent's collector, so the totals account for all CPU time
regardless of where it was spent.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Mapping, Optional

_accumulator: ContextVar[Optional[Dict[str, float]]] = ContextVar(
    "repro_stage_timings", default=None
)


@contextmanager
def collect_timings() -> Iterator[Dict[str, float]]:
    """Collect stage timings recorded anywhere inside this scope."""
    acc: Dict[str, float] = {}
    token = _accumulator.set(acc)
    try:
        yield acc
    finally:
        _accumulator.reset(token)


def record_stage(name: str, seconds: float) -> None:
    """Add ``seconds`` to stage ``name`` in the active collector (if any)."""
    acc = _accumulator.get()
    if acc is not None:
        acc[name] = acc.get(name, 0.0) + seconds


def merge_timings(timings: Mapping[str, float]) -> None:
    """Merge a worker's stage dict into the active collector."""
    for name, seconds in timings.items():
        record_stage(name, seconds)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a chain stage; a no-op cost-wise when nobody is collecting."""
    started = time.perf_counter()
    try:
        yield
    finally:
        record_stage(name, time.perf_counter() - started)


def format_timings(timings: Mapping[str, float]) -> str:
    """Render ``{stage: seconds}`` as a compact, stable one-liner."""
    if not timings:
        return ""
    parts = [
        f"{name} {seconds:.2f}s"
        for name, seconds in sorted(
            timings.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    return ", ".join(parts)
