"""Content-addressed cache for expensive chain intermediates.

Keys are SHA-256 digests of a canonical byte encoding of *everything*
that determines a stage's output: the machine, the activity trace, the
simulation profile, the BIOS state flags, the dithering configuration,
and - crucially - the RNG state on entry to the stage.  Because each
cached value also stores the RNG state on *exit*, a cache hit can
restore the generator exactly where a fresh computation would have left
it, so cached and uncached runs are bit-identical all the way down the
chain.

Two layers:

* an in-memory LRU bounded by a byte budget (per process);
* an optional on-disk layer (``cache_dir``), shared between worker
  processes and across runs, written atomically.

When the disk layer is active, :meth:`ChainCache.lock` provides a
per-key advisory file lock so concurrent workers that miss the same key
do not all compute it (the cache-stampede problem): the first one in
computes and publishes, the rest block on the lock and then re-probe
(:meth:`ChainCache.reprobe`) before falling back to computing.
:meth:`ChainCache.probe` answers "which layer holds this key" without
deserializing the value, which the sweep planner uses to predict hits.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

try:  # POSIX only; on other platforms per-key locks degrade to no-ops
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

import numpy as np

from ..obs.trace import key_prefix, trace_event
from .context import get_execution_config

#: Bump when the chain's stage semantics change, so stale disk caches
#: can never serve outputs computed by an older model.
CHAIN_SCHEMA = "chain-v1"


# ---------------------------------------------------------------------------
# Stable fingerprinting


def _update(h: hashlib._Hash, obj: Any) -> None:
    """Feed a canonical encoding of ``obj`` into hash ``h``.

    Handles the types that appear in chain-stage keys: primitives,
    numpy arrays, dataclasses (recursively), and the dict/list/tuple
    containers used by ``Generator.bit_generator.state``.
    """
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        h.update(b"\x00I" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        # repr() round-trips doubles exactly.
        h.update(b"\x00F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"\x00A" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"\x00D" + type(obj).__qualname__.encode())
        for f in dataclasses.fields(obj):
            h.update(b"\x00f" + f.name.encode())
            _update(h, getattr(obj, f.name))
    elif isinstance(obj, dict):
        h.update(b"\x00M")
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00L")
        for item in obj:
            _update(h, item)
    else:
        h.update(b"\x00R" + repr(obj).encode())


def fingerprint(*objs: Any) -> str:
    """Stable hex digest of a tuple of values (see :func:`_update`)."""
    h = hashlib.sha256()
    for obj in objs:
        _update(h, obj)
    return h.hexdigest()


def _sizeof(obj: Any) -> int:
    """Approximate retained bytes of a cached value (for the LRU budget)."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 128
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return 128 + sum(
            _sizeof(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, dict):
        return 64 + sum(_sizeof(k) + _sizeof(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple)):
        return 64 + sum(_sizeof(item) for item in obj)
    return 64


# ---------------------------------------------------------------------------
# The cache proper


class ChainCache:
    """In-memory LRU plus optional on-disk layer, content-addressed.

    Values are deep-copied on the way out so a cached array can never be
    corrupted by a downstream in-place operation.
    """

    def __init__(
        self, max_bytes: int, disk_dir: Optional[os.PathLike] = None
    ) -> None:
        self.max_bytes = int(max_bytes)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # -- public API --------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Look ``key`` up in memory, then on disk; None on miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            trace_event("cache", op="get", key=key_prefix(key), hit=True,
                        layer="memory")
            return copy.deepcopy(entry[0])
        value = self._disk_read(key)
        if value is not None:
            self._remember(key, value)
            self.hits += 1
            trace_event("cache", op="get", key=key_prefix(key), hit=True,
                        layer="disk")
            return copy.deepcopy(value)
        self.misses += 1
        trace_event("cache", op="get", key=key_prefix(key), hit=False)
        return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (memory always; disk when configured)."""
        self._remember(key, copy.deepcopy(value))
        self._disk_write(key, value)
        trace_event("cache", op="put", key=key_prefix(key))

    def probe(self, key: str) -> Optional[str]:
        """Which layer holds ``key`` ("memory"/"disk"), without reading it.

        Unlike :meth:`get` this neither deserializes the value nor
        counts toward hit/miss statistics, so planners can ask "would
        this be a hit?" cheaply and without skewing the numbers.
        """
        if key in self._entries:
            return "memory"
        path = self._disk_path(key)
        if path is not None and path.exists():
            return "disk"
        return None

    def reprobe(self, key: str) -> Optional[Any]:
        """Re-read ``key`` from the disk layer after waiting on its lock.

        Used on the loser's side of a stampede: the first probe missed,
        the per-key lock was contended, and by the time it was acquired
        the winner may have published the value.  Memory is skipped (a
        same-process writer would have been seen by :meth:`get`) and a
        find counts as a hit.
        """
        value = self._disk_read(key)
        if value is None:
            return None
        self._remember(key, value)
        self.hits += 1
        trace_event("cache", op="get", key=key_prefix(key), hit=True,
                    layer="disk-locked")
        return copy.deepcopy(value)

    @contextmanager
    def lock(self, key: str) -> Iterator[bool]:
        """Advisory per-key lock for stampede control; yields whether a
        real lock was taken.

        Only meaningful with a disk layer (without one, caches are
        process-private and cannot stampede across workers); memory-only
        caches and non-POSIX hosts yield ``False`` and synchronise
        nothing.
        """
        if self.disk_dir is None or fcntl is None:
            yield False
            return
        lock_dir = self.disk_dir / "locks"
        try:
            lock_dir.mkdir(parents=True, exist_ok=True)
            handle = open(lock_dir / f"{key}.lock", "a+")
        except OSError:
            yield False  # lock dir unavailable: degrade to unlocked
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield True
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "bytes": self._bytes,
        }

    # -- internals ---------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        size = _sizeof(value)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        if size > self.max_bytes:
            return  # would evict everything else; not worth holding
        self._entries[key] = (value, size)
        self._bytes += size
        while self._bytes > self.max_bytes and self._entries:
            _, (_, evicted) = self._entries.popitem(last=False)
            self._bytes -= evicted

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / key[:2] / f"{key}.pkl"

    def _disk_read(self, key: str) -> Optional[Any]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return None  # torn or foreign file: treat as a miss
    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic: readers never see a torn file
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # disk layer is best-effort; memory layer already has it


# ---------------------------------------------------------------------------
# Config-bound singleton

_cache: Optional[ChainCache] = None
_cache_signature: Optional[tuple] = None


def get_chain_cache() -> Optional[ChainCache]:
    """The cache for the active configuration, or None when disabled.

    Rebuilt (empty) whenever the configured directory or budget
    changes, so ``--no-cache`` / ``--cache-dir`` take effect mid-process.
    """
    global _cache, _cache_signature
    config = get_execution_config()
    if not config.cache_enabled:
        return None
    signature = (config.cache_dir, config.cache_bytes)
    if _cache is None or signature != _cache_signature:
        _cache = ChainCache(config.cache_bytes, config.cache_dir)
        _cache_signature = signature
    return _cache


def reset_chain_cache() -> None:
    """Drop the process's cache instance (tests and pool workers)."""
    global _cache, _cache_signature
    _cache = None
    _cache_signature = None
