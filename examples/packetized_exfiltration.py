#!/usr/bin/env python
"""Packetised exfiltration with CRC and sequence numbers (Section IV-C1).

"Depending on the requirement, the data can be sent in packets or
continuously."  Packets localise channel damage: a burst of interrupts
corrupts one packet (detected by its CRC-8) instead of shifting every
later bit, and sequence numbers reveal exactly what to retransmit.

Run:
    python examples/packetized_exfiltration.py
"""

import numpy as np

from repro.core.coding import bits_to_bytes, bytes_to_bits
from repro.core.decoder import BatchDecoder
from repro.covert import CovertLink, PacketFormat, Packetizer
from repro.params import TINY


def main() -> None:
    secret = b"the launch code is 0451"
    payload = bytes_to_bits(secret)

    packetizer = Packetizer(PacketFormat(payload_bits=48))
    link = CovertLink(profile=TINY, seed=77)
    stream = packetizer.frame_stream(payload, link.frame_format)
    print(f"secret      : {secret!r} ({payload.size} bits)")
    print(
        f"packets     : {len(packetizer.packetize(payload))} "
        f"x {packetizer.fmt.uncoded_bits} bits (+Hamming)"
    )
    print(f"on-air bits : {stream.size}")

    # Transmit the raw packet stream through the full chain.
    rng = np.random.default_rng(link.seed)
    transmitter = link.transmitter(rng)
    activity = link._mix_system_activity(transmitter.transmit(stream), rng)
    capture = link.render_capture(activity, rng)
    decoder = BatchDecoder(
        link.vrm_frequency_hz,
        expected_bit_period_s=transmitter.nominal_bit_duration_s(),
        config=link.decoder_config,
    )
    decoded = decoder.decode(capture)

    packets = packetizer.depacketize_stream(decoded.bits, link.frame_format)
    good = sum(1 for p in packets if p.crc_ok)
    print(f"received    : {len(packets)} packets, {good} with good CRC")
    rebuilt, missing = packetizer.reassemble(packets, payload.size)
    if missing:
        print(f"missing     : packets {missing} (would be retransmitted)")
    recovered = bits_to_bytes(rebuilt)
    print(f"recovered   : {recovered!r}")


if __name__ == "__main__":
    main()
