#!/usr/bin/env python
"""Keylogging through the PMU emission (Section V).

A victim types a passphrase into a browser on an otherwise idle laptop;
each keystroke briefly wakes the processor, and the VRM's emission
betrays the timing.  The attacker - behind a wall with a loop antenna -
detects the keystroke timeline, counts characters, and recovers the
word-length structure (the starting point for a dictionary attack).

Run:
    python examples/keylogger.py
"""

from repro.chain import paper_tuned_frequency_hz, tuned_frequency_hz
from repro.em import through_wall_scenario
from repro.keylog import (
    KeylogExperiment,
    analyze_timing,
    dictionary_reduction_factor,
    segment_words,
)
from repro.params import KEYLOG
from repro.systems import DELL_PRECISION


def main() -> None:
    machine = DELL_PRECISION
    profile = KEYLOG
    sentence = "correct horse battery staple"

    scenario = through_wall_scenario(
        tuned_frequency_hz(machine, profile),
        physics_frequency_hz=paper_tuned_frequency_hz(machine),
    )
    exp = KeylogExperiment(
        machine=machine, scenario=scenario, profile=profile, seed=3
    )
    result = exp.run(text=sentence)

    print(f"victim typed : {sentence!r} ({len(sentence)} keystrokes)")
    print(f"setup        : {scenario.name} (attacker in the next room)")
    print(
        f"detection    : {result.n_detected} events, "
        f"TPR={result.true_positive_rate:.2f}, "
        f"FPR={result.false_positive_rate:.2f}"
    )

    timeline = result.detection.events
    print("keystroke timeline (s):")
    line = "  "
    for ev in timeline:
        line += f"{ev.start:6.2f}"
    print(line)

    seg = segment_words(timeline)
    true_lengths = [len(w) for w in sentence.split(" ")]
    print(f"true word lengths      : {true_lengths}")
    print(f"recovered word lengths : {seg.word_lengths}")

    timing = analyze_timing(timeline)
    factor = dictionary_reduction_factor(timing, word_length=6)
    print(
        f"timing leak  : {timing.search_space_reduction_bits:.2f} bits "
        f"per digraph -> a 6-letter word's candidate set shrinks ~{factor:,.0f}x"
    )
    print(
        "\nword lengths plus inter-key timing reduce a dictionary attack's\n"
        "search space by orders of magnitude (Section V-B)."
    )


if __name__ == "__main__":
    main()
