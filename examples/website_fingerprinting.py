#!/usr/bin/env python
"""Website fingerprinting through the PMU emission (Section III).

The victim browses on an otherwise idle laptop.  Each page load leaves
a distinctive activity signature in the VRM emission - how long the
processor computed, in how many bursts, with what gaps.  The attacker
trains on a few labelled loads per site, then identifies later loads.

Run:
    python examples/website_fingerprinting.py
"""

import numpy as np

from repro.fingerprint import FingerprintExperiment, default_catalog


def main() -> None:
    catalog = default_catalog()
    exp = FingerprintExperiment(seed=7, catalog=catalog)
    result = exp.run(loads_per_site=6, train_fraction=0.5)

    print(f"sites        : {len(catalog)}")
    print(f"training     : {result.n_train} loads, testing {result.n_test}")
    print(f"accuracy     : {result.accuracy:.0%} (chance {1/len(catalog):.0%})")
    print("\nconfusion matrix (rows = truth):")
    width = max(len(label) for label in result.labels)
    header = " " * (width + 1) + " ".join(
        label[:6].rjust(6) for label in result.labels
    )
    print(header)
    for label, row in zip(result.labels, result.confusion):
        cells = " ".join(str(int(c)).rjust(6) for c in row)
        print(f"{label.rjust(width)} {cells}")
    print(
        "\nthe load signatures (total compute, burst count, pacing) are\n"
        "distinct enough that a nearest-centroid classifier identifies\n"
        "pages from the EM emission alone."
    )


if __name__ == "__main__":
    main()
