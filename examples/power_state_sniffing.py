#!/usr/bin/env python
"""Watch power states leak: the Section III causal experiment.

Renders the Figure 1 micro-benchmark under the four BIOS
configurations (P/C-states enabled or disabled) and prints an ASCII
"spectrogram lane" of the VRM line magnitude over time.  The spikes
alternate whenever at least one state family is enabled, and become a
continuous wall when both are pinned - the fingerprint that proves the
emission is tied to power-state switching.

Run:
    python examples/power_state_sniffing.py
"""

import numpy as np

from repro.chain import render_capture, tuned_frequency_hz
from repro.core.acquisition import AcquisitionConfig, acquire
from repro.dsp.render import ascii_lane
from repro.em import near_field_scenario
from repro.params import TINY
from repro.power import alternating_workload
from repro.systems import DELL_INSPIRON


def main() -> None:
    machine = DELL_INSPIRON
    profile = TINY
    rng_master = np.random.default_rng(0)

    scenario = near_field_scenario(
        tuned_frequency_hz(machine, profile),
        physics_frequency_hz=1.5 * machine.vrm_frequency_hz,
    )
    period = 25e-3  # paper-scale half period of the micro-benchmark
    duration = profile.dilate(2 * period * 6)

    print(f"VRM line magnitude over time ({machine.name}, 10 cm probe)\n")
    for label, allow_c, allow_p in (
        ("C+P enabled ", True, True),
        ("C disabled  ", False, True),
        ("P disabled  ", True, False),
        ("C+P disabled", False, False),
    ):
        rng = np.random.default_rng(1)
        workload = alternating_workload(
            duration, profile.dilate(period), profile.dilate(period), rng=rng
        )
        capture = render_capture(
            machine,
            workload,
            scenario,
            profile,
            rng,
            allow_c_states=allow_c,
            allow_p_states=allow_p,
        )
        envelope = acquire(
            capture,
            machine.vrm_frequency_hz / profile.total_freq_divisor,
            AcquisitionConfig(fft_size=256, hop=128),
        )
        print(f"{label} |{ascii_lane(envelope.samples)}|")
    print(
        "\nspikes alternate with the workload unless BOTH families are\n"
        "disabled - then the VRM stays in its high-power mode and the\n"
        "modulation (and the side channel) disappears."
    )


if __name__ == "__main__":
    main()
