#!/usr/bin/env python
"""Air-gap exfiltration at a distance and through a wall (Table III).

Sweeps the paper's measurement setups - near-field probe, loop antenna
at 1/1.5/2.5 m, and the through-wall office scenario with a printer and
refrigerator interfering - and shows how the attacker trades
transmission rate for reliability as the link budget shrinks.

Run:
    python examples/airgap_exfiltration.py
"""

import numpy as np

from repro.chain import paper_tuned_frequency_hz, tuned_frequency_hz
from repro.covert import CovertLink, evaluate_link
from repro.em import distance_scenario, near_field_scenario, through_wall_scenario
from repro.params import TINY
from repro.systems import DELL_INSPIRON


def main() -> None:
    machine = DELL_INSPIRON
    profile = TINY
    band = tuned_frequency_hz(machine, profile)
    physics = paper_tuned_frequency_hz(machine)

    setups = [
        ("coil probe, 10 cm", near_field_scenario(band, physics_frequency_hz=physics), 1.00),
        ("loop antenna, 1 m", distance_scenario(1.0, band, physics_frequency_hz=physics), 0.59),
        ("loop antenna, 1.5 m", distance_scenario(1.5, band, physics_frequency_hz=physics), 0.46),
        ("loop antenna, 2.5 m", distance_scenario(2.5, band, physics_frequency_hz=physics), 0.35),
        ("through 35 cm wall", through_wall_scenario(band, physics_frequency_hz=physics), 0.26),
    ]

    print(f"{'setup':22s} {'link gain':>10s} {'TR (bps)':>9s} {'BER':>9s}")
    for label, scenario, rate_scale in setups:
        link = CovertLink(
            machine=machine,
            profile=profile,
            scenario=scenario,
            rate_scale=rate_scale,
            seed=7,
        )
        ev = evaluate_link(link, bits_per_run=150, n_runs=2, label=label)
        gain_db = 20 * np.log10(scenario.link_gain())
        print(
            f"{label:22s} {gain_db:9.1f}dB {ev.transmission_rate_bps:9.0f} "
            f"{ev.ber:9.4f}"
        )
    print(
        "\nlike the paper: slowing the symbol clock keeps BER low as the\n"
        "antenna moves away - still above 800 bps from the next room."
    )


if __name__ == "__main__":
    main()
