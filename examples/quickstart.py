#!/usr/bin/env python
"""Quickstart: exfiltrate a secret over the simulated PMU-EM covert channel.

The scenario is the paper's headline demonstration: a user-level
"transmitter" process on an air-gapped laptop alternates compute and
sleep per secret bit; a $25 RTL-SDR with a coin-sized coil probe 10 cm
away picks up the voltage regulator's switching emission and decodes
the bits.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.core.coding import bits_to_bytes, bytes_to_bits, hamming_decode
from repro.core.sync import strip_header
from repro.covert import CovertLink
from repro.params import TINY
from repro.systems import DELL_INSPIRON


def main() -> None:
    secret = b"launch code: 0000"
    payload = bytes_to_bits(secret)

    # A covert link on the paper's Linux laptop, near-field coil probe,
    # with Hamming(7,4) error correction on the payload.
    link = CovertLink(
        machine=DELL_INSPIRON,
        profile=TINY,  # 100x time-dilated simulation, identical dynamics
        use_ecc=True,
        seed=7,
    )

    print(f"target      : {link.machine.name} ({link.machine.os_name})")
    print(f"VRM line    : {link.machine.vrm_frequency_hz / 1e3:.0f} kHz")
    print(f"payload     : {secret!r} ({payload.size} bits)")

    result = link.run(payload)
    metrics = result.metrics
    print(f"on-air bits : {result.tx_bits.size}")
    print(f"rate        : {result.transmission_rate_bps:.0f} bps (paper scale)")
    print(
        f"raw channel : BER={metrics.ber:.4f} "
        f"IP={metrics.insertion_probability:.4f} "
        f"DP={metrics.deletion_probability:.4f}"
    )

    # Receiver side: find the preamble, correct errors, rebuild bytes.
    recovered = strip_header(result.decode.bits, link.frame_format)
    if recovered is None:
        raise SystemExit("receiver failed to synchronize")
    data_bits, corrected = hamming_decode(recovered)
    received = bits_to_bytes(data_bits[: payload.size])
    print(f"ECC fixes   : {corrected}")
    print(f"received    : {received!r}")
    assert received == secret, "exfiltration failed"
    print("secret exfiltrated successfully")


if __name__ == "__main__":
    main()
