PY := PYTHONPATH=src python

.PHONY: test lint lint-fast lint-baseline bench bench-lint bench-parallel bench-stream bench-sweep bench-vector smoke-batch smoke-mux smoke-parallel smoke-scenario smoke-stream smoke-sweep regress regress-record

test:
	$(PY) -m pytest -x -q

# Static-analysis gate, three layers:
#   1. repro.lint  - repo-specific determinism, cache-coherence and
#                    cross-module flow rules (DET/CACHE/CONC/TRACE/
#                    FLOAT/ASYNC/RES/SCEN, see DESIGN.md sections 13+17)
#                    over src/repro, plus a narrowed determinism pass
#                    (DET001/DET002) over tests/ and benchmarks/ - the
#                    repro-scoped cross-module rules do not apply there
#   2. ruff        - general pyflakes/pycodestyle errors + format check
#   3. mypy        - types, strict on repro.exec / repro.sweep
# ruff and mypy are optional locally (install with `pip install -e
# '.[lint]'`); CI always runs all three.
lint:
	$(PY) -m repro lint
	$(PY) -m repro lint --root . --package tests \
		--select DET001 --select DET002 --no-baseline
	$(PY) -m repro lint --root . --package benchmarks \
		--select DET001 --select DET002 --no-baseline
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks && \
		ruff format --check src/repro/lint tests/lint; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

# The repro.lint pass only, through the incremental cache
# (src/.lint-cache): a warm run over an unchanged tree is a content-
# hash check plus one JSON read (see BENCH_lint.json).
lint-fast:
	$(PY) -m repro lint --cache
	$(PY) -m repro lint --cache --root . --package tests \
		--select DET001 --select DET002 --no-baseline
	$(PY) -m repro lint --cache --root . --package benchmarks \
		--select DET001 --select DET002 --no-baseline

# Accept the current repro.lint findings as the new baseline
# (reviewable diff in src/repro/lint/baseline.json).
lint-baseline:
	$(PY) -m repro lint --write-baseline

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Time a cold full lint of the shipped tree against a warm cached run
# (content hashes + one run-layer JSON read) and record both sides and
# the speedup (floor: 3x) to BENCH_lint.json.
bench-lint:
	$(PY) -m pytest benchmarks/test_bench_lint.py \
		--benchmark-only --benchmark-json=BENCH_lint.json

# Time the execution subsystem (trial pool + chain cache) and record
# the numbers, including extra_info speedups, to BENCH_parallel.json.
bench-parallel:
	$(PY) -m pytest benchmarks/test_bench_parallel.py \
		--benchmark-only --benchmark-json=BENCH_parallel.json

# Time the fleet multiplexer: 1000-stream batched demod against the
# naive per-stream fleet loop (>=5x, bit-identical), plus the capacity
# curve (streams vs shed fraction vs aggregate bits/s) under a fixed
# service budget.  Numbers land in BENCH_stream.json.
bench-stream:
	$(PY) -m pytest benchmarks/test_bench_stream.py \
		--benchmark-only --benchmark-json=BENCH_stream.json

# Time the sweep engine against trial-at-a-time naive execution on the
# receiver grid (analog chain shared by all eight trials) and record
# the numbers, including the extra_info speedup, to BENCH_sweep.json.
bench-sweep:
	$(PY) -m pytest benchmarks/test_bench_sweep.py \
		--benchmark-only --benchmark-json=BENCH_sweep.json

# Time the trial-major batched chain (repro.batch) against trial-at-a-
# time naive scalar execution on the receiver grid, and record both
# sides, the executor decision, and the whole-sweep + marginal
# per-trial speedups to BENCH_vector.json.
bench-vector:
	$(PY) -m pytest benchmarks/test_bench_vector.py \
		--benchmark-only --benchmark-json=BENCH_vector.json

# Quick end-to-end sanity check of the batched path: the receiver grid
# forced through the trial-major runner in one process (the adaptive
# executor's batched-serial lane; records are bit-identical to scalar).
smoke-batch:
	$(PY) -m repro sweep receiver-grid --jobs 1 --batch on

# Quick end-to-end sanity check of the fleet multiplexer: a tiny
# 32-stream mixed fleet (covert + keylog + clockmod) through the
# batched cross-stream DSP tick, finalised decodes checked against the
# per-stream golden path (the command exits non-zero on divergence).
smoke-mux:
	$(PY) -m repro mux --fleet stream-covert=16 --fleet keylog=8 \
		--fleet clockmod-fsk=8 --check

# Quick end-to-end sanity check of the process pool: one experiment
# fanned out across two workers.
smoke-parallel:
	$(PY) -m repro run table2 --jobs 2

# Quick end-to-end sanity check of the sweep engine: the eight-config
# receiver grid planned along the chain-cache key DAG and executed
# across two workers (shared capture travels by cache key).
smoke-sweep:
	$(PY) -m repro sweep receiver-grid --jobs 2

# Quick end-to-end sanity check of the scenario plugin framework: the
# two related-attack plugins re-run against their committed metric
# baselines, then the conformance suite over every registered scenario
# (determinism, order invariance, batch equivalence, chain-key
# coherence, RNG isolation - see DESIGN.md section 15).
smoke-scenario:
	$(PY) -m repro regress --scenario scenario-ichannels-tiny \
		--scenario scenario-clockmod-tiny
	$(PY) -m pytest tests/scenario/test_conformance.py -q

# Quick end-to-end sanity check of the streaming receiver: chunked
# replay with arrival jitter, verified bit-exact against the batch
# decoder (the command exits non-zero on divergence).
smoke-stream:
	$(PY) -m repro stream "smoke" --seed 1 --chunk-size 2048 --jitter 0.2

# Signal-quality regression gate: re-run the fixed-seed baseline
# scenarios and fail on any metric drift (see baselines/*.json).
regress:
	$(PY) -m repro regress

# Re-record the baselines after an intentional physics/schema change.
regress-record:
	$(PY) -m repro regress --record
