PY := PYTHONPATH=src python

.PHONY: test bench bench-parallel smoke-parallel smoke-stream regress regress-record

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Time the execution subsystem (trial pool + chain cache) and record
# the numbers, including extra_info speedups, to BENCH_parallel.json.
bench-parallel:
	$(PY) -m pytest benchmarks/test_bench_parallel.py \
		--benchmark-only --benchmark-json=BENCH_parallel.json

# Quick end-to-end sanity check of the process pool: one experiment
# fanned out across two workers.
smoke-parallel:
	$(PY) -m repro run table2 --jobs 2

# Quick end-to-end sanity check of the streaming receiver: chunked
# replay with arrival jitter, verified bit-exact against the batch
# decoder (the command exits non-zero on divergence).
smoke-stream:
	$(PY) -m repro stream "smoke" --seed 1 --chunk-size 2048 --jitter 0.2

# Signal-quality regression gate: re-run the fixed-seed baseline
# scenarios and fail on any metric drift (see baselines/*.json).
regress:
	$(PY) -m repro regress

# Re-record the baselines after an intentional physics/schema change.
regress-record:
	$(PY) -m repro regress --record
