"""Tests for Markdown report generation."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.reporting import result_to_markdown, results_to_markdown, write_report


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="t1",
        title="Demo table",
        rows=[{"a": 1, "b": 0.5}, {"a": 2, "b": 3.0e-6}],
        notes=["a note"],
    )


class TestMarkdown:
    def test_section_structure(self, result):
        md = result_to_markdown(result)
        assert md.startswith("## t1: Demo table")
        assert "| a | b |" in md
        assert "> a note" in md

    def test_row_values_present(self, result):
        md = result_to_markdown(result)
        assert "| 1 | 0.5 |" in md
        assert "3.00e-06" in md

    def test_empty_rows(self):
        md = result_to_markdown(ExperimentResult("x", "empty", [], []))
        assert "## x: empty" in md

    def test_document_assembly(self, result):
        md = results_to_markdown([result, result], title="Run", preamble="pre")
        assert md.startswith("# Run")
        assert md.count("## t1") == 2
        assert "pre" in md

    def test_write_report(self, result, tmp_path):
        path = tmp_path / "report.md"
        write_report([result], str(path), title="T")
        content = path.read_text()
        assert content.startswith("# T")
        assert content.endswith("\n")


class TestRunnerIntegration:
    def test_runner_returns_results_for_report(self):
        from repro.experiments.runner import run_experiments

        sink = []
        results = run_experiments(["fig4"], echo=sink.append, seed=1)
        assert len(results) == 1
        assert results[0].experiment_id == "fig4"
        assert any("fig4" in line for line in sink)
        md = results_to_markdown(results)
        assert "fig4" in md
