"""Tests for simulation profiles and scaling invariants."""

import pytest

from repro.params import (
    KEYLOG,
    PAPER,
    PAPER_SDR_SAMPLE_RATE_HZ,
    PAPER_VRM_FREQUENCY_HZ,
    REDUCED,
    TINY,
    get_profile,
)


class TestStockProfiles:
    def test_paper_profile_matches_paper_rates(self):
        assert PAPER.vrm_frequency_hz == PAPER_VRM_FREQUENCY_HZ
        assert PAPER.sdr_sample_rate_hz == PAPER_SDR_SAMPLE_RATE_HZ

    def test_time_dilation_scales_frequencies_down(self):
        assert TINY.vrm_frequency_hz == PAPER.vrm_frequency_hz / 100
        assert REDUCED.vrm_frequency_hz == PAPER.vrm_frequency_hz / 10

    def test_keylog_profile_scales_frequency_not_time(self):
        assert KEYLOG.time_scale == 1.0
        assert KEYLOG.vrm_frequency_hz == PAPER.vrm_frequency_hz / 100
        assert KEYLOG.dilate(1.0) == 1.0

    def test_decimation_factor_is_integer_and_constant(self):
        for profile in (PAPER, REDUCED, TINY, KEYLOG):
            assert profile.decimation_factor == 4

    def test_samples_per_carrier_cycle_invariant(self):
        # Time dilation must preserve the samples-per-VRM-cycle ratio.
        for profile in (PAPER, REDUCED, TINY):
            ratio = profile.rf_sample_rate_hz / profile.vrm_frequency_hz
            assert ratio == pytest.approx(
                PAPER.rf_sample_rate_hz / PAPER.vrm_frequency_hz
            )


class TestScalingHelpers:
    def test_dilate_multiplies_by_time_scale(self):
        assert TINY.dilate(1e-3) == pytest.approx(0.1)

    def test_paper_rate_inverts_dilation(self):
        simulated_rate = 33.0
        assert TINY.paper_rate(simulated_rate) == pytest.approx(3300.0)

    def test_dilate_then_rate_roundtrip(self):
        bit_period = 270e-6
        dilated = TINY.dilate(bit_period)
        assert TINY.paper_rate(1.0 / dilated) == pytest.approx(1.0 / bit_period)

    def test_scaled_returns_modified_copy(self):
        custom = TINY.scaled(time_scale=50.0)
        assert custom.time_scale == 50.0
        assert TINY.time_scale == 100.0  # original untouched


class TestProfileLookup:
    def test_lookup_by_name(self):
        assert get_profile("paper") is PAPER
        assert get_profile("tiny") is TINY

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="keylog"):
            get_profile("bogus")
