"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "table2", "fig9", "--full", "--seed", "3"]
        )
        assert args.ids == ["table2", "fig9"]
        assert args.full
        assert args.seed == 3

    def test_send_defaults(self):
        args = build_parser().parse_args(["send", "hello"])
        assert args.machine == "Inspiron"
        assert args.profile == "tiny"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig9" in out

    def test_send_roundtrip(self, capsys):
        assert main(["send", "ok", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "received: 'ok'" in out

    def test_keylog_reports_detection(self, capsys):
        assert main(["keylog", "abc abc", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "keystroke at" in out
        assert "TPR=" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "finished in" in out

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99"])

    def test_run_with_report_output(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert main(["run", "fig4", "--seed", "1", "--output", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("# Reproduction report")
        assert "fig4" in content
        assert "reproducibility:" in content
        # --output implies a manifest next to the report.
        assert (tmp_path / "fig4.manifest.json").exists()

    def test_run_with_trace_and_manifest_dir(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig4",
                    "--seed",
                    "1",
                    "--trace",
                    str(trace),
                    "--manifest-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert "experiment" in kinds
        assert "cache" in kinds
        # Stage activity shows as compute spans (cold cache) or hit
        # events (a previous test already warmed the process cache).
        assert kinds & {"span", "stage"}
        manifest = json.loads((tmp_path / "fig4.manifest.json").read_text())
        assert manifest["experiment"] == "fig4"


class TestStreamCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["stream", "hi"])
        assert args.chunk_size == 4096
        assert args.buffer_capacity == 64
        assert args.policy == "block"
        assert args.service_rate is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["stream", "hi", "--chunk-size", "0"],
            ["stream", "hi", "--chunk-size", "-5"],
            ["stream", "hi", "--buffer-capacity", "0"],
            ["stream", "hi", "--buffer-capacity", "-1"],
            ["stream", "hi", "--jitter", "-0.1"],
            ["stream", "hi", "--service-rate", "0"],
            ["keylog", "hi", "--stream", "--chunk-size", "0"],
        ],
    )
    def test_invalid_arguments_exit_2(self, capsys, argv):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "hi", "--policy", "fifo"])

    def test_stream_demo_bit_exact(self, capsys, tmp_path):
        import json

        trace = tmp_path / "stream.jsonl"
        argv = [
            "stream", "Hi", "--seed", "1", "--chunk-size", "2048",
            "--jitter", "0.2", "--trace", str(trace),
            "--manifest-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bit-exact with the batch decoder" in out
        assert "sync=locked" in out
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(e.get("name") == "stream.chunk" for e in events)
        manifest = json.loads((tmp_path / "stream-demo.json").read_text())
        assert manifest["stream"]["lossless"] is True
        assert "stream.chunks" in manifest["metrics"]

    def test_stream_demo_lossy(self, capsys):
        # A deliberately starved receiver: drops must be reported, and
        # the command still exits 0 (loss is a reported condition, not
        # a failure).
        argv = [
            "stream", "Hi", "--seed", "1", "--chunk-size", "2048",
            "--policy", "drop-oldest", "--buffer-capacity", "4",
            "--service-rate", "8000",
        ]
        with pytest.warns(RuntimeWarning):
            assert main(argv) == 0
        out = capsys.readouterr().out
        assert "lossy stream" in out

    def test_keylog_stream_reports_latency(self, capsys):
        assert main(["keylog", "abc abc", "--seed", "2", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "keystroke at" in out
        assert "detection latency" in out


class TestRegressCommand:
    def test_record_then_compare(self, capsys, tmp_path):
        argv = ["regress", "--baseline-dir", str(tmp_path),
                "--scenario", "chain-emission-tiny"]
        assert main(argv + ["--record"]) == 0
        assert "baseline recorded" in capsys.readouterr().out
        assert main(argv) == 0
        assert "regress: OK" in capsys.readouterr().out

    def test_missing_baselines_exit_nonzero(self, capsys, tmp_path):
        argv = ["regress", "--baseline-dir", str(tmp_path / "empty"),
                "--scenario", "chain-emission-tiny"]
        assert main(argv) == 1
        assert "regress: FAILED" in capsys.readouterr().out
