"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "table2", "fig9", "--full", "--seed", "3"]
        )
        assert args.ids == ["table2", "fig9"]
        assert args.full
        assert args.seed == 3

    def test_send_defaults(self):
        args = build_parser().parse_args(["send", "hello"])
        assert args.machine == "Inspiron"
        assert args.profile == "tiny"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig9" in out

    def test_send_roundtrip(self, capsys):
        assert main(["send", "ok", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "received: 'ok'" in out

    def test_keylog_reports_detection(self, capsys):
        assert main(["keylog", "abc abc", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "keystroke at" in out
        assert "TPR=" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "finished in" in out

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99"])

    def test_run_with_report_output(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert main(["run", "fig4", "--seed", "1", "--output", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("# Reproduction report")
        assert "fig4" in content
        assert "reproducibility:" in content
        # --output implies a manifest next to the report.
        assert (tmp_path / "fig4.manifest.json").exists()

    def test_run_with_trace_and_manifest_dir(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig4",
                    "--seed",
                    "1",
                    "--trace",
                    str(trace),
                    "--manifest-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert "experiment" in kinds
        assert "cache" in kinds
        # Stage activity shows as compute spans (cold cache) or hit
        # events (a previous test already warmed the process cache).
        assert kinds & {"span", "stage"}
        manifest = json.loads((tmp_path / "fig4.manifest.json").read_text())
        assert manifest["experiment"] == "fig4"


class TestRegressCommand:
    def test_record_then_compare(self, capsys, tmp_path):
        argv = ["regress", "--baseline-dir", str(tmp_path),
                "--scenario", "chain-emission-tiny"]
        assert main(argv + ["--record"]) == 0
        assert "baseline recorded" in capsys.readouterr().out
        assert main(argv) == 0
        assert "regress: OK" in capsys.readouterr().out

    def test_missing_baselines_exit_nonzero(self, capsys, tmp_path):
        argv = ["regress", "--baseline-dir", str(tmp_path / "empty"),
                "--scenario", "chain-emission-tiny"]
        assert main(argv) == 1
        assert "regress: FAILED" in capsys.readouterr().out
