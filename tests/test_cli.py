"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "table2", "fig9", "--full", "--seed", "3"]
        )
        assert args.ids == ["table2", "fig9"]
        assert args.full
        assert args.seed == 3

    def test_send_defaults(self):
        args = build_parser().parse_args(["send", "hello"])
        assert args.machine == "Inspiron"
        assert args.profile == "tiny"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig9" in out

    def test_send_roundtrip(self, capsys):
        assert main(["send", "ok", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "received: 'ok'" in out

    def test_keylog_reports_detection(self, capsys):
        assert main(["keylog", "abc abc", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "keystroke at" in out
        assert "TPR=" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "finished in" in out

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99"])

    def test_run_with_report_output(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert main(["run", "fig4", "--seed", "1", "--output", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("# Reproduction report")
        assert "fig4" in content
