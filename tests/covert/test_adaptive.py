"""Tests for adaptive rate control."""

import numpy as np
import pytest

from repro.chain import paper_tuned_frequency_hz, tuned_frequency_hz
from repro.covert.adaptive import find_max_rate, total_error_rate
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


class TestFindMaxRate:
    def test_clean_channel_keeps_full_rate(self):
        link = CovertLink(profile=TINY, seed=51)
        result = find_max_rate(link, probe_bits=80)
        assert result.best_rate_scale == 1.0
        assert result.converged

    def test_noisy_channel_backs_off(self):
        # The through-wall link fails at full rate but passes once the
        # symbol clock is slowed (Table III's manual procedure).
        from repro.em.environment import through_wall_scenario

        machine = DELL_INSPIRON
        scenario = through_wall_scenario(
            tuned_frequency_hz(machine, TINY),
            physics_frequency_hz=paper_tuned_frequency_hz(machine),
        )
        link = CovertLink(profile=TINY, seed=52, scenario=scenario)
        result = find_max_rate(
            link, target_error_rate=0.08, probe_bits=100
        )
        assert result.converged
        assert result.best_rate_scale < 1.0
        assert len(result.probes) >= 2

    def test_probe_history_recorded(self):
        link = CovertLink(profile=TINY, seed=53)
        result = find_max_rate(link, probe_bits=80)
        assert all(p.transmission_rate_bps > 0 for p in result.probes)

    def test_validation(self):
        link = CovertLink(profile=TINY)
        with pytest.raises(ValueError):
            find_max_rate(link, min_scale=0.0)
        with pytest.raises(ValueError):
            find_max_rate(link, min_scale=0.9, max_scale=0.5)
        with pytest.raises(ValueError):
            find_max_rate(link, grid_points=1)


class TestTotalErrorRate:
    def test_combines_three_components(self):
        link = CovertLink(profile=TINY, seed=54)
        payload = np.random.default_rng(0).integers(0, 2, size=60)
        rate = total_error_rate(link, payload)
        assert 0.0 <= rate < 0.2
