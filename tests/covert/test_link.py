"""Tests for the end-to-end covert link."""

import numpy as np
import pytest

from repro.covert.link import CovertLink
from repro.em.environment import distance_scenario
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON, DELL_PRECISION


class TestLinkBasics:
    def test_default_scenario_is_near_field(self):
        link = CovertLink(profile=TINY)
        assert link.scenario.name == "near-field-10cm"

    def test_tuned_between_harmonics(self):
        link = CovertLink(profile=TINY)
        assert link.tuned_frequency_hz == pytest.approx(
            1.5 * link.vrm_frequency_hz
        )

    def test_paper_tuned_frequency_ignores_profile(self):
        link = CovertLink(profile=TINY)
        assert link.paper_tuned_frequency_hz == pytest.approx(
            1.5 * DELL_INSPIRON.vrm_frequency_hz
        )

    def test_run_produces_consistent_artifacts(self, link_result):
        assert link_result.capture.duration == pytest.approx(
            link_result.activity.duration, rel=0.02
        )
        assert link_result.tx_bits.size > 100

    def test_transmission_rate_in_paper_band(self, link_result):
        assert 2500 < link_result.transmission_rate_bps < 4500

    def test_deterministic_given_seed(self):
        payload = np.random.default_rng(0).integers(0, 2, size=40)
        r1 = CovertLink(profile=TINY, seed=9).run(payload)
        r2 = CovertLink(profile=TINY, seed=9).run(payload)
        assert np.array_equal(r1.decode.bits, r2.decode.bits)

    def test_different_seeds_differ(self):
        payload = np.random.default_rng(0).integers(0, 2, size=40)
        r1 = CovertLink(profile=TINY, seed=1).run(payload)
        r2 = CovertLink(profile=TINY, seed=2).run(payload)
        assert r1.activity.duration != r2.activity.duration


class TestRateScale:
    def test_rate_scale_slows_transmission(self):
        payload = np.random.default_rng(0).integers(0, 2, size=40)
        fast = CovertLink(profile=TINY, seed=3).run(payload)
        slow = CovertLink(profile=TINY, seed=3, rate_scale=0.5).run(payload)
        assert slow.transmission_rate_bps < 0.7 * fast.transmission_rate_bps

    def test_rejects_bad_rate_scale(self):
        link = CovertLink(profile=TINY, rate_scale=-1.0)
        with pytest.raises(ValueError):
            link.run(np.array([1, 0]))


class TestWindowsLink:
    def test_windows_machine_runs_slower_but_clean(self):
        payload = np.random.default_rng(0).integers(0, 2, size=60)
        result = CovertLink(
            machine=DELL_PRECISION, profile=TINY, seed=4
        ).run(payload)
        assert result.transmission_rate_bps < 1000
        assert result.metrics.ber < 0.02


class TestBiosKnobs:
    def test_disabling_both_states_kills_channel(self):
        payload = np.random.default_rng(0).integers(0, 2, size=60)
        link = CovertLink(
            profile=TINY,
            seed=5,
            allow_c_states=False,
            allow_p_states=False,
        )
        result = link.run(payload)
        # No modulation: the receiver cannot recover the stream.
        assert result.metrics.ber > 0.2 or result.decode.bits.size < 30


class TestScenarioInjection:
    def test_custom_scenario_respected(self):
        link0 = CovertLink(profile=TINY)
        scen = distance_scenario(
            2.5,
            link0.tuned_frequency_hz,
            physics_frequency_hz=link0.paper_tuned_frequency_hz,
        )
        link = CovertLink(profile=TINY, scenario=scen)
        assert link.scenario.name == "los-2.5m"
