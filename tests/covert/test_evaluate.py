"""Tests for the channel evaluation harness."""

import numpy as np
import pytest

from repro.covert.evaluate import evaluate_link
from repro.covert.link import CovertLink
from repro.params import TINY


@pytest.fixture(scope="module")
def evaluation():
    link = CovertLink(profile=TINY, seed=1)
    return evaluate_link(link, bits_per_run=60, n_runs=2)


class TestEvaluateLink:
    def test_pools_all_runs(self, evaluation):
        assert len(evaluation.runs) == 2
        total_tx = sum(r.tx_bits.size for r in evaluation.runs)
        assert evaluation.metrics.transmitted == total_tx

    def test_rates_averaged(self, evaluation):
        rates = [r.transmission_rate_bps for r in evaluation.runs]
        assert evaluation.transmission_rate_bps == pytest.approx(
            np.mean(rates)
        )

    def test_label_defaults_to_machine(self, evaluation):
        assert "Inspiron" in evaluation.label

    def test_row_serialisation(self, evaluation):
        row = evaluation.row()
        assert set(row) == {"label", "BER", "TR_bps", "IP", "DP"}

    def test_runs_use_distinct_payloads(self, evaluation):
        a, b = evaluation.runs
        assert not np.array_equal(a.tx_bits, b.tx_bits)

    def test_validation(self):
        link = CovertLink(profile=TINY)
        with pytest.raises(ValueError):
            evaluate_link(link, bits_per_run=4)
        with pytest.raises(ValueError):
            evaluate_link(link, bits_per_run=60, n_runs=0)
