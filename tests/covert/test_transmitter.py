"""Tests for the Figure 3 transmitter model."""

import numpy as np
import pytest

from repro.core.sync import FrameFormat
from repro.covert.transmitter import Transmitter, TransmitterConfig, frame_payload
from repro.osmodel.timers import ComputeModel, UnixUsleep, WindowsSleep


def make_transmitter(sleep=100e-6, active=150e-6, seed=0, timer_cls=UnixUsleep):
    rng = np.random.default_rng(seed)
    return Transmitter(
        TransmitterConfig(sleep_period_s=sleep, active_period_s=active),
        timer=timer_cls(rng),
        compute=ComputeModel(2e-9, 12e-6, noise_rel_std=0.02),
        rng=rng,
    )


class TestBitShapes:
    def test_one_bit_has_long_active_period(self):
        tx = make_transmitter()
        trace = tx.transmit([1])
        assert trace.intervals[0].duration == pytest.approx(150e-6, rel=0.2)

    def test_zero_bit_has_housekeeping_blip_only(self):
        tx = make_transmitter()
        trace = tx.transmit([0])
        assert trace.intervals[0].duration < 30e-6

    def test_zero_bit_sleeps_twice_as_long(self):
        tx1 = make_transmitter(seed=1)
        one = tx1.transmit([1])
        tx0 = make_transmitter(seed=1)
        zero = tx0.transmit([0])
        one_idle = one.duration - one.intervals[0].duration
        zero_idle = zero.duration - zero.intervals[0].duration
        assert zero_idle == pytest.approx(2 * one_idle, rel=0.25)

    def test_every_bit_emits_one_interval(self):
        tx = make_transmitter()
        bits = np.random.default_rng(2).integers(0, 2, size=50)
        trace = tx.transmit(bits)
        assert len(trace.intervals) == 50

    def test_loop_iterations_positive(self):
        assert make_transmitter().loop_iterations > 0


class TestNominalDuration:
    def test_close_to_realised_mean(self):
        tx = make_transmitter(seed=3)
        bits = np.tile([1, 0], 50)
        trace = tx.transmit(bits)
        realised = trace.duration / bits.size
        assert tx.nominal_bit_duration_s() == pytest.approx(realised, rel=0.1)

    def test_windows_nominal_reflects_tick_rounding(self):
        tx = make_transmitter(
            sleep=0.5e-3, active=0.75e-3, timer_cls=WindowsSleep
        )
        nominal = tx.nominal_bit_duration_s()
        # Tick quantisation pushes the realised bit well beyond the sum
        # of the requested periods.
        assert nominal > 1.2e-3


class TestFramePayload:
    def test_header_prepended(self):
        fmt = FrameFormat()
        frame = frame_payload([1, 0, 1, 0], fmt, use_ecc=False)
        assert np.array_equal(frame[: fmt.header.size], fmt.header)

    def test_ecc_expands_payload(self):
        fmt = FrameFormat()
        raw = frame_payload([1, 0, 1, 0], fmt, use_ecc=False)
        coded = frame_payload([1, 0, 1, 0], fmt, use_ecc=True)
        assert coded.size == raw.size + 3  # 4 bits -> 7 bits

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TransmitterConfig(sleep_period_s=0.0, active_period_s=1e-4)
