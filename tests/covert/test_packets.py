"""Tests for packetised covert transmission."""

import numpy as np
import pytest

from repro.core.sync import FrameFormat
from repro.covert.packets import PacketFormat, Packetizer, crc8


class TestCrc8:
    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        assert np.array_equal(crc8(bits), crc8(bits))

    def test_detects_single_bit_flip(self):
        bits = np.random.default_rng(0).integers(0, 2, size=64)
        reference = crc8(bits)
        for position in range(bits.size):
            corrupted = bits.copy()
            corrupted[position] ^= 1
            assert not np.array_equal(crc8(corrupted), reference)

    def test_empty_input(self):
        assert crc8(np.empty(0, dtype=int)).size == 8


class TestPacketFormat:
    def test_sequence_roundtrip(self):
        fmt = PacketFormat(sequence_bits=8)
        for seq in (0, 1, 200, 255):
            assert fmt.parse_sequence(fmt.sequence_field(seq)) == seq

    def test_sequence_wraps(self):
        fmt = PacketFormat(sequence_bits=4)
        assert fmt.parse_sequence(fmt.sequence_field(17)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketFormat(payload_bits=4)
        with pytest.raises(ValueError):
            PacketFormat(sequence_bits=0)


class TestPacketizer:
    def test_packet_count(self):
        p = Packetizer(PacketFormat(payload_bits=32))
        payload = np.zeros(100, dtype=int)
        assert len(p.packetize(payload)) == 4  # ceil(100/32)

    def test_clean_roundtrip(self):
        p = Packetizer(PacketFormat(payload_bits=32))
        payload = np.random.default_rng(1).integers(0, 2, size=100)
        packets = [p.parse(coded) for coded in p.packetize(payload)]
        assert all(pk.crc_ok for pk in packets)
        rebuilt, missing = p.reassemble(packets, payload.size)
        assert missing == []
        assert np.array_equal(rebuilt, payload)

    def test_single_error_corrected_by_hamming(self):
        p = Packetizer(PacketFormat(payload_bits=32))
        payload = np.random.default_rng(2).integers(0, 2, size=32)
        coded = p.packetize(payload)[0].copy()
        coded[5] ^= 1
        packet = p.parse(coded)
        assert packet.crc_ok
        assert packet.corrected_bits == 1
        assert np.array_equal(packet.payload, payload)

    def test_heavy_corruption_flagged_by_crc(self):
        p = Packetizer(PacketFormat(payload_bits=32))
        payload = np.random.default_rng(3).integers(0, 2, size=32)
        coded = p.packetize(payload)[0].copy()
        coded[:10] ^= 1
        packet = p.parse(coded)
        assert not packet.crc_ok

    def test_reassemble_reports_missing(self):
        p = Packetizer(PacketFormat(payload_bits=16))
        payload = np.random.default_rng(4).integers(0, 2, size=64)
        packets = [p.parse(c) for c in p.packetize(payload)]
        del packets[1]
        rebuilt, missing = p.reassemble(packets, payload.size)
        assert missing == [1]
        assert np.array_equal(rebuilt[:16], payload[:16])
        assert np.all(rebuilt[16:32] == 0)

    def test_out_of_order_reassembly(self):
        p = Packetizer(PacketFormat(payload_bits=16))
        payload = np.random.default_rng(5).integers(0, 2, size=48)
        packets = [p.parse(c) for c in p.packetize(payload)]
        rebuilt, missing = p.reassemble(packets[::-1], payload.size)
        assert missing == []
        assert np.array_equal(rebuilt, payload)


class TestStreamMode:
    def test_depacketize_finds_all_packets(self):
        fmt = FrameFormat()
        p = Packetizer(PacketFormat(payload_bits=24))
        payload = np.random.default_rng(6).integers(0, 2, size=72)
        stream = p.frame_stream(payload, fmt)
        packets = p.depacketize_stream(stream, fmt)
        assert len(packets) == 3
        rebuilt, missing = p.reassemble(packets, payload.size)
        assert missing == []
        assert np.array_equal(rebuilt, payload)

    def test_depacketize_survives_bit_errors(self):
        fmt = FrameFormat()
        p = Packetizer(PacketFormat(payload_bits=24))
        payload = np.random.default_rng(7).integers(0, 2, size=48)
        stream = p.frame_stream(payload, fmt).copy()
        stream[len(stream) // 3] ^= 1  # hit one packet somewhere
        packets = p.depacketize_stream(stream, fmt)
        rebuilt, missing = p.reassemble(packets, payload.size)
        assert np.count_nonzero(rebuilt != payload) <= 1

    def test_empty_payload(self):
        p = Packetizer()
        assert p.frame_stream(np.empty(0, dtype=int)).size > 0  # one pad packet


class TestEndToEndPacketLink:
    def test_packets_over_the_real_channel(self):
        from repro.covert.link import CovertLink
        from repro.params import TINY

        fmt = FrameFormat()
        packetizer = Packetizer(PacketFormat(payload_bits=24))
        payload = np.random.default_rng(8).integers(0, 2, size=48)
        stream = packetizer.frame_stream(payload, fmt)
        # Transmit the raw packet stream (framing already included).
        link = CovertLink(profile=TINY, seed=41, frame_format=fmt)
        # Bypass link's own framing: transmit the stream as the payload
        # of a frameless transmitter run.
        rng = np.random.default_rng(41)
        transmitter = link.transmitter(rng)
        activity = transmitter.transmit(stream)
        activity = link._mix_system_activity(activity, rng)
        capture = link.render_capture(activity, rng)
        from repro.core.decoder import BatchDecoder

        decoder = BatchDecoder(
            link.vrm_frequency_hz,
            expected_bit_period_s=transmitter.nominal_bit_duration_s(),
            config=link.decoder_config,
        )
        decoded = decoder.decode(capture)
        packets = packetizer.depacketize_stream(decoded.bits, fmt)
        rebuilt, missing = packetizer.reassemble(packets, payload.size)
        errors = int(np.count_nonzero(rebuilt != payload))
        assert len(missing) <= 1
        assert errors <= 24  # at most one lost packet's worth
