"""Tests for scheduler contention and trace mixing."""

import numpy as np
import pytest

from repro.osmodel.scheduler import Scheduler, SchedulerConfig
from repro.types import ActivityTrace, Interval


def make_scheduler(stretch=0.5, delay=0.0):
    return Scheduler(
        SchedulerConfig(stretch_per_overlap=stretch, wakeup_delay_s=delay),
        rng=np.random.default_rng(0),
    )


class TestContention:
    def test_no_competitor_leaves_trace_unchanged(self):
        sched = make_scheduler()
        tx = ActivityTrace([Interval(0.0, 0.1), Interval(0.2, 0.3)], 0.5)
        out = sched.contend(tx, ActivityTrace([], 0.5))
        assert [(iv.start, iv.end) for iv in out.intervals] == [
            (0.0, 0.1),
            (0.2, 0.3),
        ]

    def test_overlap_stretches_active_period(self):
        sched = make_scheduler(stretch=1.0)
        tx = ActivityTrace([Interval(0.0, 0.1)], 0.5)
        competitor = ActivityTrace([Interval(0.0, 0.1)], 0.5)
        out = sched.contend(tx, competitor)
        assert out.intervals[0].duration == pytest.approx(0.2)

    def test_later_intervals_shift_to_preserve_order(self):
        sched = make_scheduler(stretch=1.0)
        tx = ActivityTrace([Interval(0.0, 0.1), Interval(0.15, 0.2)], 0.5)
        competitor = ActivityTrace([Interval(0.0, 0.1)], 0.5)
        out = sched.contend(tx, competitor)
        assert out.intervals[1].start == pytest.approx(0.25)

    def test_busy_wake_adds_delay(self):
        sched = Scheduler(
            SchedulerConfig(stretch_per_overlap=0.0, wakeup_delay_s=10e-3),
            rng=np.random.default_rng(1),
        )
        tx = ActivityTrace([Interval(0.1, 0.2)], 0.5)
        competitor = ActivityTrace([Interval(0.05, 0.15)], 0.5)
        out = sched.contend(tx, competitor)
        assert out.intervals[0].start > 0.1

    def test_empty_transmitter_passes_through(self):
        sched = make_scheduler()
        tx = ActivityTrace([], 0.5)
        assert sched.contend(tx, ActivityTrace([], 0.5)) is tx


class TestPackageActivity:
    def test_union_of_traces(self):
        sched = make_scheduler()
        a = ActivityTrace([Interval(0.0, 0.1)], 1.0)
        b = ActivityTrace([Interval(0.2, 0.3)], 1.0)
        merged = sched.package_activity(a, b)
        assert merged.busy_time == pytest.approx(0.2)

    def test_requires_at_least_one_trace(self):
        with pytest.raises(ValueError):
            make_scheduler().package_activity()
