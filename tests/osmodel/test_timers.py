"""Tests for OS sleep-timer models."""

import numpy as np
import pytest

from repro.osmodel.timers import ComputeModel, UnixUsleep, WindowsSleep


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestUnixUsleep:
    def test_never_sleeps_less_than_requested(self, rng):
        timer = UnixUsleep(rng)
        assert all(timer.sleep(100e-6) >= 100e-6 for _ in range(100))

    def test_positive_skew(self, rng):
        timer = UnixUsleep(rng)
        realised = np.array([timer.sleep(100e-6) for _ in range(2000)])
        overshoot = realised - 100e-6
        assert np.mean(overshoot) > np.median(overshoot) * 0.9
        assert np.percentile(overshoot, 99) > 3 * np.median(overshoot)

    def test_time_scale_dilates_overhead(self, rng):
        t1 = UnixUsleep(np.random.default_rng(0), time_scale=1.0)
        t100 = UnixUsleep(np.random.default_rng(0), time_scale=100.0)
        # Same seed: jitter draws scale exactly with time_scale.
        assert t100.sleep(0.0) == pytest.approx(100 * t1.sleep(0.0))

    def test_minimum_reliable_sleep_scales(self, rng):
        assert UnixUsleep(rng, time_scale=10).minimum_reliable_sleep_s == 100e-6

    def test_rejects_negative_request(self, rng):
        with pytest.raises(ValueError):
            UnixUsleep(rng).sleep(-1.0)


class TestWindowsSleep:
    def test_wakes_on_tick_boundaries(self, rng):
        timer = WindowsSleep(rng, tick_s=1e-3, jitter_scale_s=0.0)
        now = 0.3e-3
        realised = timer.sleep(1e-3, now_s=now)
        wake = now + realised
        assert wake / 1e-3 == pytest.approx(round(wake / 1e-3))

    def test_never_early(self, rng):
        timer = WindowsSleep(rng)
        for now in (0.0, 0.1e-3, 0.49e-3):
            assert timer.sleep(1e-3, now_s=now) >= 1e-3

    def test_quantisation_dominates_precision(self, rng):
        timer = WindowsSleep(rng, tick_s=1e-3)
        r1 = timer.sleep(0.1e-3, now_s=0.0)
        r2 = timer.sleep(0.9e-3, now_s=0.0)
        # Requests below one tick realise to the same tick boundary.
        assert abs(r1 - r2) < 0.2e-3

    def test_phase_correlation_keeps_periods_regular(self):
        # Starting on a tick edge, sleep(1 tick) + zero work = exactly
        # periodic wakeups (plus small jitter).
        timer = WindowsSleep(np.random.default_rng(0), jitter_scale_s=1e-9)
        t = 0.0
        periods = []
        for _ in range(10):
            s = timer.sleep(0.5e-3, now_s=t)
            periods.append(s)
            t += s
        assert np.ptp(periods) < 0.05e-3

    def test_rejects_negative_request(self, rng):
        with pytest.raises(ValueError):
            WindowsSleep(rng).sleep(-1.0)


class TestComputeModel:
    def test_duration_scales_with_iterations(self, rng):
        model = ComputeModel(2e-9, 10e-6, noise_rel_std=0.0)
        t1 = model.seconds_for(1000, rng)
        t2 = model.seconds_for(2000, rng)
        assert t2 > t1

    def test_zero_iterations_still_cost_overhead(self, rng):
        model = ComputeModel(2e-9, 10e-6, noise_rel_std=0.0)
        assert model.seconds_for(0, rng) == pytest.approx(10e-6)

    def test_iterations_for_inverts_seconds_for(self, rng):
        model = ComputeModel(2e-9, 10e-6, noise_rel_std=0.0)
        iterations = model.iterations_for(110e-6)
        assert model.seconds_for(iterations, rng) == pytest.approx(110e-6, rel=0.01)

    def test_scaled_dilates_both_terms(self):
        model = ComputeModel(2e-9, 10e-6).scaled(100.0)
        assert model.seconds_per_iteration == pytest.approx(200e-9)
        assert model.call_overhead_s == pytest.approx(1e-3)

    def test_rejects_negative_iterations(self, rng):
        with pytest.raises(ValueError):
            ComputeModel(2e-9, 10e-6).seconds_for(-1, rng)
