"""Tests for interrupt and background-activity generators."""

import numpy as np
import pytest

from repro.osmodel.interrupts import (
    NOISY,
    QUIET,
    InterruptProfile,
    background_load,
    generate,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestGenerate:
    def test_intervals_sorted_and_disjoint(self, rng):
        trace = generate(QUIET, 2.0, rng)
        for a, b in zip(trace.intervals, trace.intervals[1:]):
            assert a.end <= b.start

    def test_rate_scales_with_profile(self):
        quiet = generate(QUIET, 5.0, np.random.default_rng(1))
        noisy = generate(NOISY, 5.0, np.random.default_rng(1))
        assert len(noisy.intervals) > len(quiet.intervals)

    def test_busy_fraction_is_small(self, rng):
        trace = generate(QUIET, 5.0, rng)
        assert trace.busy_time / trace.duration < 0.05

    def test_time_scale_preserves_busy_fraction(self):
        base = generate(NOISY, 5.0, np.random.default_rng(2), time_scale=1.0)
        dilated = generate(NOISY, 500.0, np.random.default_rng(2), time_scale=100.0)
        assert dilated.busy_time / dilated.duration == pytest.approx(
            base.busy_time / base.duration, rel=0.5
        )

    def test_zero_rate_profile_is_silent(self, rng):
        silent = InterruptProfile(
            routine_rate_hz=0.0, heavy_rate_hz=0.0
        )
        trace = generate(silent, 1.0, rng)
        assert trace.intervals == []

    def test_rejects_nonpositive_duration(self, rng):
        with pytest.raises(ValueError):
            generate(QUIET, 0.0, rng)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            InterruptProfile(routine_rate_hz=-1.0)


class TestBackgroundLoad:
    def test_mostly_short_bursts(self, rng):
        trace = background_load(5.0, rng)
        durations = np.array([iv.duration for iv in trace.intervals])
        # The paper: bursts mostly smaller than one sleep/active period
        # (~100 us); medium bursts are the exception.
        assert np.median(durations) < 150e-6

    def test_duty_cycle_moderate(self, rng):
        trace = background_load(5.0, rng)
        duty = trace.busy_time / trace.duration
        assert 0.05 < duty < 0.4

    def test_intervals_disjoint(self, rng):
        trace = background_load(2.0, rng)
        for a, b in zip(trace.intervals, trace.intervals[1:]):
            assert a.end <= b.start

    def test_rejects_bad_scales(self, rng):
        with pytest.raises(ValueError):
            background_load(1.0, rng, short_burst_s=0.0)
