"""Shared-memory array transport: round trips and lifetime rules."""

import numpy as np
import pytest

from repro.exec.shm import ShmArena, ShmToken, load_array
from repro.types import IQCapture


class TestArrayRoundTrip:
    def test_share_and_load_is_byte_identical(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal(1000).astype(np.complex64)
        with ShmArena() as arena:
            token = arena.share_array(array)
            assert token.nbytes == array.nbytes
            loaded = load_array(token)
        assert loaded.dtype == array.dtype
        assert np.array_equal(loaded, array)

    def test_loaded_array_is_a_private_copy(self):
        array = np.arange(16, dtype=np.float64)
        with ShmArena() as arena:
            token = arena.share_array(array)
            loaded = load_array(token)
            loaded[0] = -1.0
            again = load_array(token)
        assert again[0] == 0.0  # the segment never saw the mutation

    def test_zero_copy_is_rejected(self):
        with ShmArena() as arena:
            token = arena.share_array(np.zeros(4))
            with pytest.raises(ValueError, match="zero-copy"):
                load_array(token, copy=False)

    def test_arena_exit_unlinks_segments(self):
        with ShmArena() as arena:
            token = arena.share_array(np.zeros(8))
        with pytest.raises(FileNotFoundError):
            load_array(token)

    def test_non_contiguous_input_is_handled(self):
        array = np.arange(20, dtype=np.float64)[::2]
        with ShmArena() as arena:
            loaded = load_array(arena.share_array(array))
        assert np.array_equal(loaded, array)


class TestCaptureRoundTrip:
    def test_capture_round_trip(self):
        rng = np.random.default_rng(1)
        capture = IQCapture(
            samples=(
                rng.standard_normal(512) + 1j * rng.standard_normal(512)
            ).astype(np.complex64),
            sample_rate=250e3,
            center_frequency=1.5e6,
        )
        with ShmArena() as arena:
            shm_capture = arena.share_capture(capture)
            # The token is what crosses the pickle pipe: tiny and inert.
            assert isinstance(shm_capture.token, ShmToken)
            loaded = shm_capture.load()
        assert loaded.sample_rate == capture.sample_rate
        assert loaded.center_frequency == capture.center_frequency
        assert np.array_equal(loaded.samples, capture.samples)
