"""The 1-CPU / pickle-bound degradation guard in ``parallel_map``.

ISSUE 6 satellite: ``BENCH_parallel.json`` showed the process pool
running 24% *slower* than serial on a single-CPU host - fork + pickle
overhead with no cores to hide it.  ``parallel_map`` now refuses to
fork in that regime (and when per-task pickle bytes dwarf compute),
degrading to the serial reference path with a structured trace event.
Results are identical either way; only the scheduling changes.
"""

import warnings

import pytest

import repro.exec.pool as pool_mod
from repro.exec.pool import parallel_map
from repro.obs.trace import collect_events


def _square(x):
    return x * x


class _MustNotFork:
    def __init__(self, *args, **kwargs):
        raise AssertionError("guard should have prevented pool creation")


@pytest.fixture
def no_fork(monkeypatch):
    monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", _MustNotFork)


class TestSingleCpuGuard:
    def test_degrades_to_serial_without_forking(self, no_fork, monkeypatch):
        monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 1)
        assert parallel_map(_square, [1, 2, 3], jobs=4) == [1, 4, 9]

    def test_degradation_is_silent_but_traced(self, no_fork, monkeypatch):
        # A correct scheduling decision, not a failure: no
        # RuntimeWarning, but a structured event for the manifest.
        monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 1)
        with collect_events() as events:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                parallel_map(_square, [1, 2, 3], jobs=4)
        guards = [
            e
            for e in events
            if e.get("event") == "warning"
            and e.get("kind") == "pool-single-cpu"
        ]
        assert len(guards) == 1
        assert guards[0]["jobs"] == 3
        assert guards[0]["tasks"] == 3
        assert guards[0]["cpus"] == 1

    def test_multi_cpu_host_still_forks(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 2)
        with collect_events() as events:
            assert parallel_map(_square, [1, 2], jobs=2) == [1, 4]
        assert not [
            e for e in events if e.get("kind") == "pool-single-cpu"
        ]


class TestPickleBoundGuard:
    def test_huge_payloads_stay_serial(self, no_fork, monkeypatch):
        monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 8)
        with collect_events() as events:
            out = parallel_map(
                _square,
                [1, 2, 3],
                jobs=4,
                bytes_hint=pool_mod._PICKLE_BYTES_CEILING,
            )
        assert out == [1, 4, 9]
        guards = [
            e for e in events if e.get("kind") == "pool-pickle-bound"
        ]
        assert len(guards) == 1
        assert guards[0]["bytes_hint"] == pool_mod._PICKLE_BYTES_CEILING

    def test_small_payloads_fork(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 2)
        assert parallel_map(_square, [1, 2], jobs=2, bytes_hint=64) == [1, 4]
