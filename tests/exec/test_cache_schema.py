"""Cache safety across schema bumps and byte-punned keys.

Two ways a content-addressed cache can lie:

* a disk entry written by an older chain model is served after the
  semantics changed - prevented by ``CHAIN_SCHEMA`` participating in
  every key, verified here end to end through ``render_emission``;
* two *different* values encode to the same bytes (numpy dtype/shape
  punning, bytes-vs-str, bool-vs-int) and collide - prevented by the
  type tags in the canonical encoding.
"""

import numpy as np
import pytest

import repro.chain
from repro.chain import render_emission
from repro.exec.cache import fingerprint, get_chain_cache, reset_chain_cache
from repro.exec.context import execution_scope
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON
from repro.types import ActivityTrace, Interval


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def _render():
    activity = ActivityTrace([Interval(0.001, 0.003)], duration=0.005)
    rng = np.random.default_rng(7)
    return render_emission(DELL_INSPIRON, activity, TINY, rng)


class TestSchemaBump:
    def test_stale_disk_entries_not_served_after_bump(
        self, tmp_path, monkeypatch
    ):
        cache_dir = str(tmp_path / "cache")
        with execution_scope(cache_enabled=True, cache_dir=cache_dir):
            wave_v1 = _render()
            stats = get_chain_cache().stats()
            assert stats["misses"] > 0  # populated the disk layer

        # A new process with the same disk cache but a bumped schema:
        # every probe must miss (the old entries' keys no longer exist).
        reset_chain_cache()
        monkeypatch.setattr(repro.chain, "CHAIN_SCHEMA", "chain-v2-test")
        with execution_scope(cache_enabled=True, cache_dir=cache_dir):
            wave_v2 = _render()
            stats = get_chain_cache().stats()
            assert stats["hits"] == 0
            assert stats["misses"] > 0
        # The physics didn't change, only the schema tag: same output.
        assert np.array_equal(wave_v1, wave_v2)

    def test_same_schema_still_hits_across_processes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with execution_scope(cache_enabled=True, cache_dir=cache_dir):
            wave_first = _render()
        reset_chain_cache()  # simulate a fresh process, same disk dir
        with execution_scope(cache_enabled=True, cache_dir=cache_dir):
            wave_second = _render()
            assert get_chain_cache().stats()["hits"] > 0
        assert np.array_equal(wave_first, wave_second)


class TestFingerprintPunning:
    def test_same_bytes_different_dtype(self):
        # 4 zero bytes either way; the dtype tag must split them.
        a = np.zeros(4, dtype=np.uint8)
        b = np.zeros(1, dtype=np.uint32)
        assert a.tobytes() == b.tobytes()
        assert fingerprint(a) != fingerprint(b)

    def test_same_bytes_different_shape(self):
        a = np.arange(6).reshape(2, 3)
        b = np.arange(6).reshape(3, 2)
        assert a.tobytes() == b.tobytes()
        assert fingerprint(a) != fingerprint(b)

    def test_scalar_kinds_do_not_collide(self):
        assert fingerprint(np.float64(1.0)) != fingerprint(np.int64(1))
        assert fingerprint(b"1") != fingerprint("1")
        assert fingerprint([1, 2]) != fingerprint((1, 2, None))

    def test_containers_do_not_pun_across_nesting(self):
        assert fingerprint([[1], [2]]) != fingerprint([[1, 2]])
        assert fingerprint({"a": 1, "b": 2}) != fingerprint({"a": 1})
