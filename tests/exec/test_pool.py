"""Tests for parallel_map and the execution context."""

import pytest

import repro.exec.pool as pool_mod
from repro.exec.context import (
    ExecutionConfig,
    execution_scope,
    get_execution_config,
)
from repro.exec.pool import default_jobs, parallel_map, resolve_jobs
from repro.exec.timing import collect_timings, format_timings, stage


@pytest.fixture(autouse=True)
def multi_cpu(monkeypatch):
    # These tests exercise the real fork paths; pin the CPU probe so a
    # single-CPU CI host doesn't trip the batched-serial degradation.
    monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 2)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _timed_square(x):
    with stage("square"):
        return x * x


def _read_jobs(_):
    return get_execution_config().jobs


class TestContext:
    def test_default_is_serial(self):
        assert ExecutionConfig().jobs == 1

    def test_scope_overrides_and_restores(self):
        base = get_execution_config()
        with execution_scope(jobs=3):
            assert get_execution_config().jobs == 3
            assert get_execution_config().cache_enabled == base.cache_enabled
        assert get_execution_config().jobs == base.jobs

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(jobs=0)
        with pytest.raises(ValueError):
            ExecutionConfig(cache_bytes=-1)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_jobs_from_context(self):
        with execution_scope(jobs=2):
            assert parallel_map(_square, [2, 3]) == [4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, [1, 2], jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, [1, 2], jobs=1)

    def test_workers_run_serially_inside(self):
        # Nested fan-out inside a worker must see jobs=1 (no pool
        # recursion / oversubscription).
        assert parallel_map(_read_jobs, [0, 1], jobs=2) == [1, 1]

    def test_worker_timings_merged(self):
        with collect_timings() as timings:
            parallel_map(_timed_square, [1, 2, 3], jobs=2)
        assert timings.get("square", 0.0) > 0.0

    def test_resolve_jobs_validation(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        assert resolve_jobs(5) == 5

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestTiming:
    def test_stage_records_into_collector(self):
        with collect_timings() as timings:
            with stage("x"):
                pass
            with stage("x"):
                pass
        assert timings["x"] >= 0.0

    def test_stage_without_collector_is_noop(self):
        with stage("orphan"):
            pass  # must not raise

    def test_format_timings_sorted_by_cost(self):
        text = format_timings({"fast": 0.5, "slow": 2.0})
        assert text.index("slow") < text.index("fast")
        assert format_timings({}) == ""
