"""The pool's serial fallback must be loud, correct, and observable.

Sandboxed environments can refuse process creation; ``parallel_map``
then degrades to the serial reference path.  Results are identical
(tasks own their seeds) but wall-clock is not, so the degradation must
surface as a ``RuntimeWarning`` and a structured trace event instead of
silently eating ``--jobs``.
"""

import warnings

import pytest

import repro.exec.pool as pool_mod
from repro.exec.context import execution_scope
from repro.exec.pool import parallel_map
from repro.obs.trace import collect_events


def _square(x):
    return x * x


class _BrokenExecutor:
    def __init__(self, *args, **kwargs):
        raise PermissionError("process creation forbidden (test)")


@pytest.fixture(autouse=True)
def multi_cpu(monkeypatch):
    # The fallback under test is the *pool probe* failing, which needs
    # the single-CPU degradation guard out of the way first.
    monkeypatch.setattr(pool_mod, "effective_cpus", lambda: 2)


@pytest.fixture(autouse=True)
def fresh_warning_dedupe():
    # The warning fires once per ExecutionConfig instance; tests share
    # the process-default config, so isolate them from each other.
    pool_mod._serial_fallback_warned.clear()
    yield
    pool_mod._serial_fallback_warned.clear()


@pytest.fixture
def broken_pool(monkeypatch):
    monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", _BrokenExecutor)


class TestSerialFallback:
    def test_results_still_correct(self, broken_pool):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]

    def test_emits_runtime_warning(self, broken_pool):
        with pytest.warns(RuntimeWarning, match="serially instead of"):
            parallel_map(_square, [1, 2, 3], jobs=2)

    def test_emits_structured_trace_event(self, broken_pool):
        with collect_events() as events:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                parallel_map(_square, [1, 2, 3], jobs=2)
        fallbacks = [
            e
            for e in events
            if e.get("event") == "warning"
            and e.get("kind") == "pool-serial-fallback"
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0]["jobs"] == 2
        assert fallbacks[0]["tasks"] == 3
        assert "PermissionError" in fallbacks[0]["error"]

    def test_healthy_pool_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]

    def test_serial_request_never_touches_the_executor(self, broken_pool):
        # jobs=1 is the reference path; it must not warn or probe pools.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert parallel_map(_square, [1, 2], jobs=1) == [1, 4]


class TestFallbackWarningDedupe:
    """A sweep calls ``parallel_map`` once per trial group; under a
    no-fork sandbox that used to mean one identical warning per group.
    The environmental condition is per execution config, so the warning
    fires once per config instance while the structured trace event
    still records every occurrence."""

    def test_warns_once_per_config(self, broken_pool):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RuntimeWarning)
            for _ in range(3):
                parallel_map(_square, [1, 2, 3], jobs=2)
        fallback = [
            w for w in caught if "serially instead of" in str(w.message)
        ]
        assert len(fallback) == 1

    def test_new_scope_warns_again(self, broken_pool):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RuntimeWarning)
            parallel_map(_square, [1, 2, 3], jobs=2)
            with execution_scope(jobs=2):
                parallel_map(_square, [1, 2, 3])
                parallel_map(_square, [1, 2, 3])
            with execution_scope(jobs=2):
                parallel_map(_square, [1, 2, 3])
        fallback = [
            w for w in caught if "serially instead of" in str(w.message)
        ]
        assert len(fallback) == 3

    def test_trace_event_fires_every_time(self, broken_pool):
        with collect_events() as events:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                for _ in range(3):
                    parallel_map(_square, [1, 2, 3], jobs=2)
        fallbacks = [
            e
            for e in events
            if e.get("event") == "warning"
            and e.get("kind") == "pool-serial-fallback"
        ]
        assert len(fallbacks) == 3
