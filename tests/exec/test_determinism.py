"""End-to-end guarantees of the execution subsystem:

* worker count never changes results (bit-identical at jobs=1 vs jobs=4);
* the chain cache never changes results (cached vs uncached identical,
  including the RNG state left behind).
"""

import numpy as np
import pytest

from repro.chain import render_capture, render_emission, tuned_frequency_hz
from repro.covert.evaluate import evaluate_link
from repro.covert.link import CovertLink
from repro.em.environment import near_field_scenario
from repro.exec import execution_scope, get_chain_cache, reset_chain_cache
from repro.params import TINY
from repro.power.workload import alternating_workload
from repro.systems.laptops import DELL_INSPIRON


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def _evaluate(jobs):
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=9)
    return evaluate_link(link, bits_per_run=60, n_runs=3, jobs=jobs)


def _workload():
    return alternating_workload(
        TINY.dilate(10e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
    )


class TestWorkerCountInvariance:
    def test_jobs4_bit_identical_to_serial(self):
        serial = _evaluate(jobs=1)
        parallel = _evaluate(jobs=4)
        assert serial.ber == parallel.ber
        assert serial.insertion_probability == parallel.insertion_probability
        assert serial.deletion_probability == parallel.deletion_probability
        assert serial.transmission_rate_bps == parallel.transmission_rate_bps
        for a, b in zip(serial.runs, parallel.runs):
            assert np.array_equal(a.tx_bits, b.tx_bits)
            assert np.array_equal(a.decode.bits, b.decode.bits)
            assert np.array_equal(a.capture.samples, b.capture.samples)


class TestCacheTransparency:
    def test_emission_identical_and_rng_state_restored(self):
        workload = _workload()

        def render():
            rng = np.random.default_rng(11)
            wave = render_emission(DELL_INSPIRON, workload, TINY, rng)
            return wave, rng.bit_generator.state

        with execution_scope(cache_enabled=False):
            wave_off, state_off = render()
        with execution_scope(cache_enabled=True):
            wave_cold, state_cold = render()  # populates
            wave_warm, state_warm = render()  # serves from cache
            assert get_chain_cache().stats()["hits"] > 0
        assert np.array_equal(wave_off, wave_cold)
        assert np.array_equal(wave_off, wave_warm)
        assert state_off == state_cold == state_warm

    def test_capture_identical_through_full_chain(self):
        workload = _workload()
        scenario = near_field_scenario(tuned_frequency_hz(DELL_INSPIRON, TINY))

        def capture():
            rng = np.random.default_rng(12)
            cap = render_capture(
                DELL_INSPIRON, workload, scenario, TINY, rng
            )
            return cap, rng.bit_generator.state

        with execution_scope(cache_enabled=False):
            cap_off, state_off = capture()
        with execution_scope(cache_enabled=True):
            capture()  # cold
            cap_warm, state_warm = capture()
        assert np.array_equal(cap_off.samples, cap_warm.samples)
        assert cap_off.center_frequency == cap_warm.center_frequency
        assert state_off == state_warm

    def test_receiver_sweep_shares_chain_prefix(self):
        # Varying only the decoder must reuse the cached capture.
        from repro.core.acquisition import AcquisitionConfig
        from repro.core.decoder import DecoderConfig

        payload = np.random.default_rng(4).integers(0, 2, size=40)
        with execution_scope(cache_enabled=True):
            for hop in (16, 32):
                link = CovertLink(
                    machine=DELL_INSPIRON,
                    profile=TINY,
                    seed=21,
                    decoder_config=DecoderConfig(
                        acquisition=AcquisitionConfig(fft_size=256, hop=hop)
                    ),
                )
                link.run(payload)
            stats = get_chain_cache().stats()
        assert stats["hits"] >= 1  # second run served the capture layer

    def test_dithering_config_changes_key(self):
        from repro.countermeasures import VrmDithering

        workload = _workload()
        with execution_scope(cache_enabled=True):
            rng = np.random.default_rng(13)
            plain = render_emission(DELL_INSPIRON, workload, TINY, rng)
            rng = np.random.default_rng(13)
            dithered = render_emission(
                DELL_INSPIRON,
                workload,
                TINY,
                rng,
                vrm_dithering=VrmDithering(spread_rel=0.1),
            )
        n = min(plain.size, dithered.size)
        assert not np.array_equal(plain[:n], dithered[:n])

    def test_disk_cache_roundtrip_through_chain(self, tmp_path):
        workload = _workload()
        with execution_scope(cache_enabled=True, cache_dir=str(tmp_path)):
            rng = np.random.default_rng(14)
            first = render_emission(DELL_INSPIRON, workload, TINY, rng)
        reset_chain_cache()  # drop the in-memory layer; disk remains
        with execution_scope(cache_enabled=True, cache_dir=str(tmp_path)):
            rng = np.random.default_rng(14)
            second = render_emission(DELL_INSPIRON, workload, TINY, rng)
            assert get_chain_cache().stats()["hits"] > 0
        assert np.array_equal(first, second)
