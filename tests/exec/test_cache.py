"""Tests for the content-addressed chain cache."""

import numpy as np
import pytest

from repro.exec.cache import (
    ChainCache,
    fingerprint,
    get_chain_cache,
    reset_chain_cache,
)
from repro.exec.context import execution_scope
from repro.params import TINY, REDUCED
from repro.systems.laptops import DELL_INSPIRON, LENOVO_THINKPAD


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("a", 1, 2.5) == fingerprint("a", 1, 2.5)

    def test_sensitive_to_value_changes(self):
        assert fingerprint("a", 1) != fingerprint("a", 2)
        assert fingerprint(1.0) != fingerprint(1.0000000001)

    def test_type_tags_prevent_confusion(self):
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(None) != fingerprint("None")

    def test_arrays_hash_contents(self):
        a = np.arange(5, dtype=float)
        b = np.arange(5, dtype=float)
        assert fingerprint(a) == fingerprint(b)
        b[2] = 99.0
        assert fingerprint(a) != fingerprint(b)

    def test_array_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.float64)
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        assert fingerprint(a) != fingerprint(a.reshape(2, 2))

    def test_dataclasses_hash_fields(self):
        assert fingerprint(DELL_INSPIRON) == fingerprint(DELL_INSPIRON)
        assert fingerprint(DELL_INSPIRON) != fingerprint(LENOVO_THINKPAD)
        assert fingerprint(TINY) != fingerprint(REDUCED)

    def test_rng_state_dict_hashable(self):
        rng = np.random.default_rng(3)
        before = fingerprint(rng.bit_generator.state)
        assert before == fingerprint(np.random.default_rng(3).bit_generator.state)
        rng.random()
        assert fingerprint(rng.bit_generator.state) != before


class TestLru:
    def test_roundtrip_and_stats(self):
        cache = ChainCache(max_bytes=1 << 20)
        assert cache.get("k") is None
        cache.put("k", np.arange(10.0))
        out = cache.get("k")
        assert np.array_equal(out, np.arange(10.0))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_returned_value_is_a_copy(self):
        cache = ChainCache(max_bytes=1 << 20)
        cache.put("k", np.zeros(4))
        first = cache.get("k")
        first[:] = 7.0
        assert np.all(cache.get("k") == 0.0)

    def test_evicts_least_recently_used(self):
        one_kb = np.zeros(128)  # 1 KiB of float64 + overhead
        cache = ChainCache(max_bytes=3000)
        cache.put("a", one_kb)
        cache.put("b", one_kb)
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", one_kb)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_oversized_value_not_retained(self):
        cache = ChainCache(max_bytes=100)
        cache.put("big", np.zeros(1000))
        assert cache.get("big") is None

    def test_clear(self):
        cache = ChainCache(max_bytes=1 << 20)
        cache.put("k", 1.0)
        cache.clear()
        assert cache.get("k") is None


class TestDiskLayer:
    def test_survives_memory_clear(self, tmp_path):
        cache = ChainCache(max_bytes=1 << 20, disk_dir=tmp_path)
        cache.put("deadbeef", (np.arange(3.0), {"s": 1}))
        cache.clear()
        arr, state = cache.get("deadbeef")
        assert np.array_equal(arr, np.arange(3.0))
        assert state == {"s": 1}

    def test_shared_between_instances(self, tmp_path):
        ChainCache(max_bytes=1 << 20, disk_dir=tmp_path).put("cafe", 42.0)
        other = ChainCache(max_bytes=1 << 20, disk_dir=tmp_path)
        assert other.get("cafe") == 42.0

    def test_torn_file_is_a_miss(self, tmp_path):
        cache = ChainCache(max_bytes=1 << 20, disk_dir=tmp_path)
        path = tmp_path / "ab" / "abcd.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x80\x04not a pickle")
        assert cache.get("abcd") is None


class TestConfigBinding:
    def test_disabled_config_returns_none(self):
        with execution_scope(cache_enabled=False):
            assert get_chain_cache() is None

    def test_enabled_config_returns_singleton(self):
        with execution_scope(cache_enabled=True):
            assert get_chain_cache() is get_chain_cache()

    def test_rebuilt_when_directory_changes(self, tmp_path):
        with execution_scope(cache_enabled=True):
            first = get_chain_cache()
        with execution_scope(cache_enabled=True, cache_dir=str(tmp_path)):
            second = get_chain_cache()
        assert first is not second
        assert second.disk_dir == tmp_path
