"""The adaptive executor: decision table and BatchExecutor modes.

The decision table (DESIGN.md §14) is the contract: callers state the
job shape, the executor picks batched-serial / threads / processes.
Every branch is pinned here, as is the trace event that records *why*,
and each BatchExecutor mode's result-order and context behaviour.
"""

import threading

import pytest

import repro.exec.executor as ex_mod
from repro.exec.executor import (
    SHM_BYTES_PER_TASK,
    THREAD_BYTES_TOTAL,
    BatchExecutor,
    choose_executor,
    effective_cpus,
)
from repro.obs.metrics import metrics_scope, tap_batch_executor
from repro.obs.trace import collect_events


def _cpus(monkeypatch, n):
    monkeypatch.setattr(ex_mod, "effective_cpus", lambda: n)


class TestDecisionTable:
    def test_single_task_is_serial(self, monkeypatch):
        _cpus(monkeypatch, 8)
        d = choose_executor(1, jobs=8)
        assert (d.mode, d.jobs, d.transport) == ("serial", 1, "none")

    def test_single_task_batchable_reports_batched_serial(self, monkeypatch):
        _cpus(monkeypatch, 8)
        assert choose_executor(1, jobs=8, batchable=True).mode == "batched-serial"

    def test_jobs_one_is_the_reference_path(self, monkeypatch):
        _cpus(monkeypatch, 8)
        d = choose_executor(16, jobs=1, batchable=True)
        assert (d.mode, d.jobs) == ("batched-serial", 1)

    def test_single_cpu_forces_batched_serial(self, monkeypatch):
        _cpus(monkeypatch, 1)
        d = choose_executor(16, jobs=8, batchable=True)
        assert (d.mode, d.jobs) == ("batched-serial", 1)
        assert "single CPU" in d.reason

    def test_numpy_bound_large_arrays_pick_threads(self, monkeypatch):
        _cpus(monkeypatch, 4)
        per_task = THREAD_BYTES_TOTAL // 4
        d = choose_executor(
            8, jobs=8, bytes_per_task=per_task, numpy_bound=True
        )
        assert (d.mode, d.transport) == ("threads", "none")
        assert d.jobs == 4  # min(jobs, cpus, tasks)

    def test_numpy_bound_small_arrays_still_fork(self, monkeypatch):
        _cpus(monkeypatch, 4)
        d = choose_executor(8, jobs=8, bytes_per_task=64, numpy_bound=True)
        assert (d.mode, d.transport) == ("processes", "pickle")

    def test_processes_with_shm_transport_for_big_payloads(self, monkeypatch):
        _cpus(monkeypatch, 4)
        d = choose_executor(8, jobs=4, bytes_per_task=SHM_BYTES_PER_TASK)
        assert (d.mode, d.transport) == ("processes", "shm")

    def test_jobs_capped_by_tasks(self, monkeypatch):
        _cpus(monkeypatch, 16)
        assert choose_executor(3, jobs=16).jobs == 3

    def test_invalid_jobs_rejected(self, monkeypatch):
        _cpus(monkeypatch, 4)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            choose_executor(4, jobs=0)

    def test_jobs_defaults_to_execution_config(self, monkeypatch):
        from repro.exec.context import execution_scope

        _cpus(monkeypatch, 1)
        with execution_scope(jobs=1):
            assert choose_executor(4).jobs == 1

    def test_every_decision_is_traced(self, monkeypatch):
        _cpus(monkeypatch, 1)
        with collect_events() as events:
            d = choose_executor(4, jobs=4, batchable=True)
        traced = [e for e in events if e.get("event") == "batch.executor"]
        assert len(traced) == 1
        assert traced[0]["mode"] == d.mode
        assert traced[0]["cpus"] == 1
        assert traced[0]["tasks"] == 4
        assert traced[0]["reason"] == d.reason

    def test_decision_feeds_metrics(self, monkeypatch):
        _cpus(monkeypatch, 1)
        with metrics_scope() as reg:
            tap_batch_executor(choose_executor(4, jobs=4, batchable=True))
        snap = reg.snapshot()
        assert snap["batch.executor.batched-serial"]["value"] == 1.0


class TestEffectiveCpus:
    def test_returns_positive_int(self):
        assert effective_cpus() >= 1


class TestBatchExecutor:
    def _run(self, monkeypatch, cpus, **kwargs):
        _cpus(monkeypatch, cpus)
        decision = choose_executor(4, **kwargs)
        return decision, BatchExecutor(decision).map(
            lambda x: x * x, [1, 2, 3, 4]
        )

    def test_batched_serial_preserves_order(self, monkeypatch):
        d, out = self._run(monkeypatch, 1, jobs=4, batchable=True)
        assert d.mode == "batched-serial"
        assert out == [1, 4, 9, 16]

    def test_threads_preserve_order(self, monkeypatch):
        d, out = self._run(
            monkeypatch,
            4,
            jobs=4,
            bytes_per_task=THREAD_BYTES_TOTAL,
            numpy_bound=True,
        )
        assert d.mode == "threads"
        assert out == [1, 4, 9, 16]

    def test_threads_run_under_copied_context(self, monkeypatch):
        # Taps inside thread tasks must reach the caller's collectors.
        _cpus(monkeypatch, 4)
        decision = choose_executor(
            4, jobs=4, bytes_per_task=THREAD_BYTES_TOTAL, numpy_bound=True
        )
        seen = []
        with collect_events() as events:
            from repro.obs.trace import trace_event

            def task(x):
                seen.append(threading.current_thread() is threading.main_thread())
                trace_event("warning", kind="from-thread", x=x)
                return x

            BatchExecutor(decision).map(task, [1, 2, 3, 4])
        assert not all(seen)  # work actually left the main thread
        assert len([e for e in events if e.get("kind") == "from-thread"]) == 4

    def test_processes_delegate_to_parallel_map(self, monkeypatch):
        _cpus(monkeypatch, 4)
        decision = choose_executor(4, jobs=2)
        assert decision.mode == "processes"
        calls = {}

        def fake_parallel_map(fn, items, jobs=None):
            calls["jobs"] = jobs
            return [fn(item) for item in items]

        import repro.exec.pool as pool_mod

        monkeypatch.setattr(pool_mod, "parallel_map", fake_parallel_map)
        out = BatchExecutor(decision).map(lambda x: x + 1, [1, 2, 3])
        assert out == [2, 3, 4]
        assert calls["jobs"] == 2

    def test_map_emits_execute_span(self, monkeypatch):
        _cpus(monkeypatch, 1)
        decision = choose_executor(4, jobs=4, batchable=True)
        with collect_events() as events:
            BatchExecutor(decision).map(lambda x: x, [1, 2])
        spans = [
            e
            for e in events
            if e.get("event") == "span" and e.get("name") == "batch.execute"
        ]
        assert len(spans) == 1
        assert spans[0]["mode"] == "batched-serial"
        assert spans[0]["tasks"] == 2
