"""Stampede control: per-key locks, probe/reprobe, and the chain path."""

import threading
import time

import numpy as np
import pytest

from repro.chain import _compute_through_lock
from repro.exec.cache import ChainCache
from repro.obs.trace import collect_events


@pytest.fixture
def shared_dir(tmp_path):
    return tmp_path / "cache"


class TestProbe:
    def test_probe_reports_layer_without_counting(self, shared_dir):
        cache = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        assert cache.probe("k" * 64) is None
        cache.put("k" * 64, 123)
        assert cache.probe("k" * 64) == "memory"
        other = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        assert other.probe("k" * 64) == "disk"
        assert other.stats()["hits"] == 0
        assert other.stats()["misses"] == 0

    def test_probe_memory_only_cache(self):
        cache = ChainCache(max_bytes=2**20)
        cache.put("k" * 64, 1)
        assert cache.probe("k" * 64) == "memory"
        assert cache.probe("x" * 64) is None


class TestLock:
    def test_lock_yields_false_without_disk_layer(self):
        cache = ChainCache(max_bytes=2**20)
        with cache.lock("k" * 64) as locked:
            assert locked is False

    def test_lock_yields_true_with_disk_layer(self, shared_dir):
        cache = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        with cache.lock("k" * 64) as locked:
            assert locked is True

    def test_lock_excludes_other_cache_instances(self, shared_dir):
        # Two instances sharing the disk dir model two pool workers.
        a = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        b = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        key = "k" * 64
        entered = threading.Event()
        order = []

        def contender():
            entered.set()
            with b.lock(key) as locked:
                assert locked
                order.append("b")

        with a.lock(key) as locked:
            assert locked
            thread = threading.Thread(target=contender)
            thread.start()
            entered.wait(timeout=5.0)
            time.sleep(0.05)  # give the contender time to block
            order.append("a")
        thread.join(timeout=5.0)
        assert order == ["a", "b"]

    def test_distinct_keys_do_not_contend(self, shared_dir):
        a = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        b = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        with a.lock("k" * 64):
            done = threading.Event()

            def other():
                with b.lock("j" * 64):
                    done.set()

            thread = threading.Thread(target=other)
            thread.start()
            assert done.wait(timeout=5.0)
            thread.join(timeout=5.0)


class TestReprobe:
    def test_reprobe_serves_published_value(self, shared_dir):
        a = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        b = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        key = "k" * 64
        assert b.get(key) is None  # the losing worker's initial miss
        a.put(key, ("value", 42))  # winner publishes meanwhile
        hit = b.reprobe(key)
        assert hit == ("value", 42)
        assert b.stats()["hits"] == 1

    def test_reprobe_miss_returns_none(self, shared_dir):
        cache = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        assert cache.reprobe("k" * 64) is None


class TestComputeThroughLock:
    """The deterministic two-worker stampede scenario, single-process:
    worker B misses, worker A publishes, B then enters the lock."""

    def test_loser_is_served_and_does_not_compute(self, shared_dir):
        a = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        b = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        key = "k" * 64
        assert b.get(key) is None  # B's miss, before A publishes
        winner_rng = np.random.default_rng(7)
        winner_value = winner_rng.normal(size=4)
        winner_rng.random()  # the compute advances the RNG
        a.put(key, (winner_value, winner_rng.bit_generator.state))

        loser_rng = np.random.default_rng(7)

        def compute():
            raise AssertionError("loser must not recompute a published key")

        with collect_events() as events:
            value = _compute_through_lock(b, key, "vrm", loser_rng, compute)
        assert np.array_equal(value, winner_value)
        # RNG restored to the winner's exit state.
        assert (
            loser_rng.bit_generator.state["state"]
            == winner_rng.bit_generator.state["state"]
        )
        avoided = [e for e in events if e["event"] == "cache.stampede_avoided"]
        assert len(avoided) == 1
        assert avoided[0]["stage"] == "vrm"
        assert avoided[0]["key"] == key[:12]

    def test_winner_computes_and_publishes(self, shared_dir):
        cache = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        key = "k" * 64
        rng = np.random.default_rng(1)
        calls = []

        def compute():
            calls.append(1)
            rng.random()
            return "computed"

        with collect_events() as events:
            value = _compute_through_lock(cache, key, "pmu", rng, compute)
        assert value == "computed"
        assert calls == [1]
        assert not [
            e for e in events if e["event"] == "cache.stampede_avoided"
        ]
        # Published for the next worker, with the exit RNG state.
        other = ChainCache(max_bytes=2**20, disk_dir=shared_dir)
        stored_value, stored_state = other.get(key)
        assert stored_value == "computed"
        assert stored_state["state"] == rng.bit_generator.state["state"]

    def test_memory_only_cache_still_computes_once(self):
        cache = ChainCache(max_bytes=2**20)
        rng = np.random.default_rng(1)
        value = _compute_through_lock(cache, "k" * 64, "pmu", rng, lambda: 5)
        assert value == 5
        assert cache.get("k" * 64) == (5, rng.bit_generator.state)
