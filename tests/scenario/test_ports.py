"""The ported experiments must reproduce the legacy paths bit for bit.

Two pinning styles:

* **Committed baselines** - the keylog and stream ports are checked
  against the numbers recorded in ``baselines/*.json`` (the same files
  ``make regress`` gates on), so a port drifting from the legacy
  physics fails here even before the baseline gate runs.
* **Live equality** - the table2 port is compared against a direct
  ``run_sweep`` of the same spec in the same process, record by record.
"""

import json
from pathlib import Path

import pytest

from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.scenario.registry import run_registered
from repro.sweep.engine import run_sweep

BASELINES = Path(__file__).resolve().parents[2] / "baselines"


def baseline_metrics(name):
    return json.loads((BASELINES / f"{name}.json").read_text())["metrics"]


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


class TestKeylogPort:
    def test_matches_committed_baseline(self):
        pinned = baseline_metrics("keylog-quick-fox")
        with execution_scope(jobs=1, cache_enabled=False):
            outcome = run_registered("keylog", seed=2)
        # The port publishes detection quality as receiver.* gauges; the
        # legacy path records the same numbers as keylog.* histograms.
        assert outcome.metrics["receiver.true_positive_rate"] == (
            pinned["keylog.true_positive_rate.mean"]
        )
        assert outcome.metrics["receiver.false_positive_rate"] == (
            pinned["keylog.false_positive_rate.mean"]
        )
        assert outcome.metrics["receiver.n_detected"] == (
            pinned["keylog.n_detected"]
        )

    def test_row_carries_word_recovery(self):
        with execution_scope(jobs=1, cache_enabled=False):
            outcome = run_registered("keylog", seed=2)
        (row,) = outcome.rows
        assert 0.0 <= row["word_precision"] <= 1.0
        assert 0.0 <= row["word_recall"] <= 1.0


class TestStreamPort:
    def test_matches_committed_baseline(self):
        pinned = baseline_metrics("stream-covert-tiny")
        with execution_scope(jobs=1, cache_enabled=False):
            outcome = run_registered("stream-covert", seed=5)
        for name in (
            "stream.run.chunks_dropped",
            "stream.run.chunks_shed",
            "stream.run.gap_samples",
            "stream.run.max_lag_s",
            "stream.run.synchronized",
            "stream.run.lossy_ber",
        ):
            assert outcome.metrics[name] == pinned[name], name


class TestSweepPorts:
    def test_table2_records_equal_direct_run_sweep(self, tmp_path):
        from repro.experiments.table2_near_field import sweep_spec
        from repro.params import TINY

        spec = sweep_spec(TINY, quick=True, seed=0)
        # Shared cache: the two runs traverse identical chain keys, so
        # the comparison costs one cold sweep, not two.
        with execution_scope(
            jobs=1, cache_enabled=True, cache_dir=tmp_path
        ):
            legacy = run_sweep(spec, jobs=1, batch="auto")
            outcome = run_registered("table2", seed=0)
        by_id = {r["trial_id"]: r for r in legacy.records}
        assert len(outcome.records) == len(legacy.records)
        for record in outcome.records:
            ref = by_id[record["trial_id"]]
            assert record["digest"] == ref["result"]["bits_sha"]
            assert record["result"] == ref["result"]
            assert record["trial"] == ref["trial"]

    def test_table2_plan_metrics_surface(self, tmp_path):
        with execution_scope(
            jobs=1, cache_enabled=True, cache_dir=tmp_path
        ):
            outcome = run_registered("table2", seed=0)
        assert outcome.metrics["sweep.plan.trials"] == len(outcome.records)
        assert outcome.metrics["sweep.plan.sharing_factor"] >= 1.0
        # Every trial registered its chain-key path for the coherence
        # check.
        assert len(outcome.chain_keys) == len(outcome.records)
