"""The related-attack scenarios decode, and the plugin path is open.

The two attacks port transmitter mechanisms from the related-work
papers onto this repo's PMU/VRM chain: IChannels-style current
throttling (duty-cycled vs sustained load per bit) and clock-modulation
FSK (gating frequency encodes the bit).  At the quick sizing both must
decode error-free - the baselines gate the exact numbers; these tests
gate the *claims* (the channel works, the digest chain is honest).

``TestThirdPartyPlugin`` is the integration proof the framework's docs
lean on: a scenario defined entirely outside ``repro.scenario`` -
components, spec, registration - runs through the same engine with no
extra wiring.
"""

import pytest

from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.scenario.component import Component
from repro.scenario.registry import (
    ScenarioSpec,
    register_scenario,
    run_registered,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def run_quick(name, seed=None):
    with execution_scope(jobs=1, cache_enabled=False):
        return run_registered(name, seed=seed)


class TestIChannelsThrottle:
    def test_decodes_error_free_at_default_seed(self):
        outcome = run_quick("ichannels-throttle")
        (record,) = outcome.records
        assert record["ber"] == 0.0
        assert record["bit_errors"] == 0
        assert record["digest"] == record["tx_digest"]

    def test_payload_is_nontrivial_and_seed_dependent(self):
        a = run_quick("ichannels-throttle", seed=1)
        b = run_quick("ichannels-throttle", seed=2)
        assert a.records[0]["n_bits"] >= 32
        assert a.records[0]["tx_digest"] != b.records[0]["tx_digest"]

    def test_chain_keys_reach_capture(self):
        outcome = run_quick("ichannels-throttle")
        (path,) = outcome.chain_keys
        stages = [stage for stage, _ in path]
        assert stages[0] == "pmu"
        assert stages[-1] == "capture"

    def test_receiver_threshold_separates_modes(self):
        outcome = run_quick("ichannels-throttle")
        assert outcome.metrics["receiver.threshold"] > 0.0


class TestClockModFsk:
    def test_decodes_error_free_at_default_seed(self):
        outcome = run_quick("clockmod-fsk")
        (record,) = outcome.records
        assert record["ber"] == 0.0
        assert record["digest"] == record["tx_digest"]

    def test_fsk_tones_are_separable(self):
        outcome = run_quick("clockmod-fsk")
        # Mean per-bit contrast between the two gating tones; ~26 dB at
        # the quick sizing, and anything under a few dB would decode by
        # luck rather than by physics.
        assert outcome.metrics["receiver.fsk_contrast_db"] > 6.0

    def test_channel_gauges_mirror_record(self):
        outcome = run_quick("clockmod-fsk")
        (record,) = outcome.records
        assert outcome.metrics["channel.ber"] == record["ber"]
        assert outcome.metrics["channel.transmitted"] == record["n_bits"]


class _CoinTransmitter(Component):
    """The example from the README quickstart: flip coins, publish them."""

    slot = "transmitter"
    name = "coin-tx"
    provides = ("coin.bits",)

    def run(self, ctx):
        bits = ctx.rng(self).integers(0, 2, size=16)
        ctx.publish(self, "coin.bits", bits)


class _CoinReceiver(Component):
    slot = "receiver"
    name = "coin-rx"
    requires = ("coin.bits",)

    def run(self, ctx):
        bits = ctx.get("coin.bits")
        ctx.gauge("receiver.ones", float(bits.sum()))
        ctx.add_record(
            {
                "label": "coin",
                "digest": "".join(str(int(b)) for b in bits),
            }
        )


class TestThirdPartyPlugin:
    SPEC = ScenarioSpec(
        name="test-thirdparty-coin",
        title="registration-only plugin example",
        slots=(("transmitter", "coin-tx"), ("receiver", "coin-rx")),
        default_seed=13,
    )

    def test_registration_is_the_whole_integration(self):
        register_scenario(self.SPEC)(
            lambda seed, quick: [_CoinTransmitter(), _CoinReceiver()]
        )
        outcome = run_registered("test-thirdparty-coin")
        assert outcome.seed == 13
        assert outcome.order == ["coin-tx", "coin-rx"]
        (record,) = outcome.records
        assert len(record["digest"]) == 16
        # Determinism comes from the framework, not the plugin.
        again = run_registered("test-thirdparty-coin")
        assert again.comparable() == outcome.comparable()
