"""The scenario conformance gate.

Deliberately thin: the checks live in :mod:`repro.scenario.conformance`
(so third-party plugins can reuse them), and this module only crosses
``list_scenarios()`` with ``CONFORMANCE_CHECKS``.  Registering a new
scenario adds its full conformance coverage with zero new test code.

Each scenario's run set (reference + repeat + permuted + batch-on) is
built once per session and shared by all of its checks.
"""

from __future__ import annotations

import pytest

from repro.scenario import list_scenarios
from repro.scenario.conformance import CONFORMANCE_CHECKS, execute_runs

_RUNS = {}


def _runs(name):
    if name not in _RUNS:
        _RUNS[name] = execute_runs(name)
    return _RUNS[name]


@pytest.mark.parametrize("check", sorted(CONFORMANCE_CHECKS))
@pytest.mark.parametrize("name", list_scenarios())
def test_conformance(name, check):
    CONFORMANCE_CHECKS[check](_runs(name))
