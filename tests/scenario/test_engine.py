"""Framework semantics: resolution, lifecycle, publish discipline.

These tests use tiny synthetic components; the real scenarios are
covered by the registry-parametrized conformance suite
(``test_conformance.py``).
"""

import pytest

from repro.scenario.component import SLOTS, Component, ScenarioContext
from repro.scenario.dependency import DependencyError, resolve_order
from repro.scenario.engine import run_components
from repro.scenario.lifecycle import Lifecycle, LifecycleError
from repro.scenario.registry import (
    ScenarioSpec,
    build_components,
    register_scenario,
    run_registered,
    scenario_id,
)


def component(
    slot="transmitter", name="c", provides=(), requires=(), **hooks
):
    cls = type(
        "Synthetic",
        (Component,),
        {
            "slot": slot,
            "name": name,
            "provides": tuple(provides),
            "requires": tuple(requires),
            **hooks,
        },
    )
    return cls()


class TestResolveOrder:
    def test_ties_break_by_slot_then_name(self):
        comps = [
            component("receiver", "rx"),
            component("transmitter", "tx"),
            component("channel", "ch"),
        ]
        order = [c.name for c in resolve_order(comps)]
        assert order == ["tx", "ch", "rx"]
        reordered = [c.name for c in resolve_order(list(reversed(comps)))]
        assert reordered == order

    def test_requires_beats_slot_order(self):
        # The receiver provides what the transmitter requires, so the
        # canonical slot order is overridden by the data dependency.
        comps = [
            component("transmitter", "tx", requires=("cal",)),
            component("receiver", "rx", provides=("cal",)),
        ]
        assert [c.name for c in resolve_order(comps)] == ["rx", "tx"]

    def test_empty_scenario_rejected(self):
        with pytest.raises(DependencyError, match="at least one"):
            resolve_order([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(DependencyError, match="duplicate component"):
            resolve_order(
                [component(name="dup"), component("receiver", "dup")]
            )

    def test_duplicate_providers_rejected(self):
        with pytest.raises(DependencyError, match="provided by both"):
            resolve_order(
                [
                    component(name="a", provides=("r",)),
                    component("receiver", "b", provides=("r",)),
                ]
            )

    def test_missing_provider_rejected(self):
        with pytest.raises(DependencyError, match="no component provides"):
            resolve_order([component(name="a", requires=("ghost",))])

    def test_cycle_rejected(self):
        comps = [
            component(name="a", provides=("x",), requires=("y",)),
            component("receiver", "b", provides=("y",), requires=("x",)),
        ]
        with pytest.raises(DependencyError, match="cycle"):
            resolve_order(comps)

    def test_unknown_slot_rejected(self):
        with pytest.raises(DependencyError, match="unknown slot"):
            resolve_order([component(slot="antenna")])

    def test_provides_requires_overlap_rejected(self):
        with pytest.raises(DependencyError, match="provides and requires"):
            resolve_order(
                [component(name="a", provides=("r",), requires=("r",))]
            )


class TestPublishDiscipline:
    def test_undeclared_publish_rejected(self):
        ctx = ScenarioContext("t", seed=0)
        with pytest.raises(ValueError, match="declares provides"):
            ctx.publish(component(name="a"), "sneaky", 1)

    def test_double_publish_rejected(self):
        ctx = ScenarioContext("t", seed=0)
        a = component(name="a", provides=("r",))
        ctx.publish(a, "r", 1)
        with pytest.raises(ValueError, match="write-once"):
            ctx.publish(a, "r", 2)

    def test_missing_resource_names_what_exists(self):
        ctx = ScenarioContext("t", seed=0)
        ctx.publish(component(name="a", provides=("r",)), "r", 1)
        with pytest.raises(KeyError, match="available: r"):
            ctx.get("ghost")

    def test_record_requires_label_and_digest(self):
        ctx = ScenarioContext("t", seed=0)
        with pytest.raises(ValueError, match="missing 'digest'"):
            ctx.add_record({"label": "x"})
        with pytest.raises(ValueError, match="missing 'label'"):
            ctx.add_record({"digest": "x"})


class TestLifecycle:
    def test_strict_phase_order(self):
        lc = Lifecycle()
        assert lc.phase == "configured"
        for phase in ("setup", "run", "teardown", "complete"):
            lc.advance(phase)
        assert lc.complete

    def test_skipping_a_phase_rejected(self):
        lc = Lifecycle()
        with pytest.raises(LifecycleError, match="next phase is 'setup'"):
            lc.advance("run")

    def test_advancing_past_complete_rejected(self):
        lc = Lifecycle()
        for phase in ("setup", "run", "teardown", "complete"):
            lc.advance(phase)
        with pytest.raises(LifecycleError):
            lc.advance("setup")

    def test_require_asserts_current_phase(self):
        lc = Lifecycle()
        lc.require("configured")
        with pytest.raises(LifecycleError, match="expected phase 'run'"):
            lc.require("run")


class TestEngine:
    def test_teardown_runs_on_failure_in_reverse_order(self):
        log = []

        def make(slot, name, fail=False):
            def run(self, ctx):
                if fail:
                    raise RuntimeError("boom")

            return component(
                slot,
                name,
                run=run,
                teardown=lambda self, ctx: log.append(name),
            )

        comps = [
            make("transmitter", "tx"),
            make("receiver", "rx", fail=True),
        ]
        with pytest.raises(RuntimeError, match="boom"):
            run_components("t", comps, seed=0)
        # Both components completed setup, so both tear down - consumers
        # first.
        assert log == ["rx", "tx"]

    def test_setup_failure_tears_down_only_entered(self):
        log = []

        def failing_setup(self, ctx):
            raise RuntimeError("no antenna")

        comps = [
            component(
                "transmitter",
                "tx",
                teardown=lambda self, ctx: log.append("tx"),
            ),
            component(
                "receiver",
                "rx",
                setup=failing_setup,
                teardown=lambda self, ctx: log.append("rx"),
            ),
        ]
        with pytest.raises(RuntimeError, match="no antenna"):
            run_components("t", comps, seed=0)
        assert log == ["tx"]

    def test_outcome_shape_and_builtin_gauges(self):
        outcome = run_components("t", [component(name="only")], seed=3)
        assert outcome.name == "t"
        assert outcome.seed == 3
        assert outcome.order == ["only"]
        assert outcome.metrics["scenario.components"] == 1.0
        assert outcome.metrics["scenario.records"] == 0.0
        comparable = outcome.comparable()
        assert "elapsed_s" not in comparable

    def test_components_communicate_through_resources(self):
        def publish(self, ctx):
            ctx.publish(self, "payload", [1, 2, 3])

        def consume(self, ctx):
            ctx.add_record(
                {"label": "sum", "digest": str(sum(ctx.get("payload")))}
            )

        comps = [
            component("receiver", "rx", requires=("payload",), run=consume),
            component("transmitter", "tx", provides=("payload",), run=publish),
        ]
        outcome = run_components("t", comps, seed=0)
        assert outcome.record_for("sum")["digest"] == "6"


class TestRegistry:
    def test_factory_spec_cross_check(self):
        spec = ScenarioSpec(
            name="test-engine-mismatch",
            title="spec/factory drift",
            slots=(("transmitter", "tx"), ("receiver", "rx")),
        )

        @register_scenario(spec)
        def build(seed, quick):
            return [component("transmitter", "tx")]  # rx missing

        with pytest.raises(ValueError, match="spec declares"):
            build_components("test-engine-mismatch", seed=0)

    def test_conflicting_reregistration_rejected(self):
        spec = ScenarioSpec(
            name="test-engine-conflict",
            title="one",
            slots=(("transmitter", "tx"),),
        )
        register_scenario(spec)(lambda seed, quick: [component(name="tx")])
        # Identical spec: idempotent no-op.
        register_scenario(spec)(lambda seed, quick: [component(name="tx")])
        clashing = ScenarioSpec(
            name="test-engine-conflict",
            title="two",
            slots=(("transmitter", "tx"),),
        )
        with pytest.raises(ValueError, match="different spec"):
            register_scenario(clashing)(lambda s, q: [])

    def test_run_registered_uses_default_seed(self):
        seen = {}
        spec = ScenarioSpec(
            name="test-engine-seed",
            title="default seed plumbing",
            slots=(("transmitter", "tx"),),
            default_seed=42,
        )

        @register_scenario(spec)
        def build(seed, quick):
            seen["seed"] = seed
            return [component(name="tx")]

        outcome = run_registered("test-engine-seed")
        assert seen["seed"] == 42
        assert outcome.seed == 42
        assert run_registered("test-engine-seed", seed=5).seed == 5

    def test_scenario_id_is_stable_and_content_addressed(self):
        spec = ScenarioSpec(
            name="s", title="t", slots=(("transmitter", "tx"),)
        )
        same = ScenarioSpec(
            name="s", title="t", slots=(("transmitter", "tx"),)
        )
        other = ScenarioSpec(
            name="s", title="t2", slots=(("transmitter", "tx"),)
        )
        assert scenario_id(spec) == scenario_id(same)
        assert scenario_id(spec) != scenario_id(other)
        assert len(scenario_id(spec)) == 64

    def test_slots_constant_matches_component_contract(self):
        assert SLOTS == (
            "transmitter",
            "power",
            "channel",
            "receiver",
            "countermeasure",
        )
