"""Component randomness streams: derivation, isolation, independence.

The load-bearing property (hypothesis-checked): streams are a pure
function of ``(scenario seed, stream name)`` - pairwise independent in
the sense that *which other streams exist, and in what order they were
created or drawn from*, never changes any stream's draws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.randomness import (
    RNG_SCHEMA,
    RandomnessStreams,
    derive_seed,
)

names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz-.0123456789",
        min_size=1,
        max_size=16,
    ),
    min_size=1,
    max_size=6,
    unique=True,
)


def draws(streams, name, n=8):
    return streams.stream(name).integers(0, 2**63, size=n).tolist()


class TestDerivation:
    def test_same_inputs_same_seed(self):
        assert derive_seed(7, "tx") == derive_seed(7, "tx")

    def test_seed_and_name_both_matter(self):
        assert derive_seed(7, "tx") != derive_seed(8, "tx")
        assert derive_seed(7, "tx") != derive_seed(7, "rx")

    def test_schema_string_pins_the_derivation(self):
        # The derivation is content-addressed under RNG_SCHEMA; bumping
        # the schema is the only sanctioned way to change every stream.
        assert RNG_SCHEMA == "scenario-rng-v1"

    def test_stream_is_cached_not_reset(self):
        streams = RandomnessStreams(0)
        first = draws(streams, "a", 4)
        # Same generator object: a second call continues the stream
        # instead of replaying it.
        assert streams.stream("a") is streams.stream("a")
        fresh = RandomnessStreams(0)
        assert draws(fresh, "a", 4) == first


class TestIsolation:
    def test_streams_differ_between_names(self):
        streams = RandomnessStreams(3)
        assert draws(streams, "alpha") != draws(streams, "beta")

    def test_interleaving_does_not_couple_streams(self):
        solo = RandomnessStreams(3)
        expected = draws(solo, "alpha", 16)
        mixed = RandomnessStreams(3)
        a = mixed.stream("alpha")
        b = mixed.stream("beta")
        got = []
        for _ in range(8):  # alternate draws between the two streams
            got.extend(a.integers(0, 2**63, size=2).tolist())
            b.integers(0, 2**63, size=5)
        assert got == expected

    @settings(max_examples=50, deadline=None)
    @given(names=names, seed=st.integers(min_value=0, max_value=2**31))
    def test_creation_order_never_changes_any_stream(self, names, seed):
        """Permuting component registration order never changes any
        stream's draws (the conformance suite's RNG-isolation property,
        stated over arbitrary name sets)."""
        forward = RandomnessStreams(seed)
        backward = RandomnessStreams(seed)
        expect = {name: draws(forward, name) for name in names}
        for name in reversed(names):
            backward.stream(name)
        assert {name: draws(backward, name) for name in names} == expect

    @settings(max_examples=50, deadline=None)
    @given(names=names, seed=st.integers(min_value=0, max_value=2**31))
    def test_streams_pairwise_distinct(self, names, seed):
        streams = RandomnessStreams(seed)
        seen = {}
        for name in names:
            d = tuple(draws(streams, name))
            assert d not in seen.values(), f"streams collide: {name}"
            seen[name] = d


class TestContainer:
    def test_names_and_contains(self):
        streams = RandomnessStreams(1)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams
        assert list(streams.names()) == ["x"]

    def test_derive_seed_matches_module_function(self):
        streams = RandomnessStreams(11)
        assert streams.derive_seed("tx") == derive_seed(11, "tx")

    def test_derived_generators_reproducible(self):
        a = np.random.default_rng(RandomnessStreams(4).derive_seed("p"))
        b = np.random.default_rng(RandomnessStreams(4).derive_seed("p"))
        assert a.integers(0, 100, size=4).tolist() == (
            b.integers(0, 100, size=4).tolist()
        )

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RandomnessStreams(1).stream("")
