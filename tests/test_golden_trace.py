"""Golden-trace regression: a committed IQ snapshot of the full chain.

The chain cache (``repro.exec.cache``) trusts ``CHAIN_SCHEMA`` to name
the chain's semantics: any change to what the stages *compute* must
bump it, or stale disk caches silently serve outputs of the old model.
This test makes that contract enforceable.  A tiny fixed-seed capture
is committed under ``tests/golden/<CHAIN_SCHEMA>-capture.npz``; the
test re-renders it and asserts bit-identity.  A semantic change to the
chain therefore fails here until the author bumps ``CHAIN_SCHEMA`` -
at which point the golden file's *name* changes too, and the helper
below regenerates it deliberately:

    PYTHONPATH=src python tests/test_golden_trace.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.chain import render_capture, tuned_frequency_hz
from repro.em.environment import near_field_scenario
from repro.exec.cache import CHAIN_SCHEMA
from repro.exec.context import execution_scope
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON
from repro.types import ActivityTrace, Interval

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden_path() -> Path:
    # Keyed on the schema tag: bumping CHAIN_SCHEMA retires the old
    # snapshot by name instead of silently overwriting it.
    return GOLDEN_DIR / f"{CHAIN_SCHEMA}-capture.npz"


def render_golden_capture():
    """The reference render: fixed machine, activity, scenario, seed."""
    activity = ActivityTrace(
        [
            Interval(0.001, 0.003),
            Interval(0.005, 0.0065),
            Interval(0.007, 0.0075, level=0.5),
        ],
        duration=0.008,
    )
    scenario = near_field_scenario(
        tuned_frequency_hz(DELL_INSPIRON, TINY),
        physics_frequency_hz=1.5 * DELL_INSPIRON.vrm_frequency_hz,
    )
    with execution_scope(jobs=1, cache_enabled=False):
        return render_capture(
            DELL_INSPIRON,
            activity,
            scenario,
            TINY,
            np.random.default_rng(42),
        )


def test_golden_capture_is_bit_identical():
    path = golden_path()
    assert path.exists(), (
        f"no golden capture for schema {CHAIN_SCHEMA!r} at {path}. "
        "If you just bumped CHAIN_SCHEMA after a deliberate semantic "
        "change, regenerate it: "
        "PYTHONPATH=src python tests/test_golden_trace.py --regenerate"
    )
    golden = np.load(path)
    capture = render_golden_capture()
    assert capture.sample_rate == float(golden["sample_rate"])
    assert capture.center_frequency == float(golden["center_frequency"])
    assert capture.samples.dtype == golden["samples"].dtype
    # Bit identity, not approx: the chain is deterministic under a
    # fixed seed, so *any* difference is a semantic change that needs
    # a CHAIN_SCHEMA bump (and a fresh golden file).
    assert np.array_equal(capture.samples, golden["samples"]), (
        "chain output changed for the fixed-seed golden scenario; if "
        "intentional, bump CHAIN_SCHEMA in repro/exec/cache.py and "
        "regenerate tests/golden/"
    )


def _regenerate() -> Path:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    capture = render_golden_capture()
    path = golden_path()
    np.savez_compressed(
        path,
        samples=capture.samples,
        sample_rate=capture.sample_rate,
        center_frequency=capture.center_frequency,
    )
    return path


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print(f"golden capture written to {_regenerate()}")
    else:
        print(__doc__)
