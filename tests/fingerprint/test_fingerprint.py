"""Tests for the website-fingerprinting subpackage."""

import numpy as np
import pytest

from repro.fingerprint.classifier import (
    NearestCentroidClassifier,
    accuracy,
    confusion_matrix,
)
from repro.fingerprint.features import (
    FEATURE_NAMES,
    features_from_events,
)
from repro.fingerprint.workloads import (
    LoadPhase,
    default_catalog,
)
from repro.keylog.detector import DetectedEvent


class TestWorkloads:
    def test_catalog_has_distinct_sites(self):
        catalog = default_catalog()
        assert len(catalog) == 8
        assert len({site.name for site in catalog}) == 8

    def test_sample_is_valid_trace(self):
        rng = np.random.default_rng(0)
        for site in default_catalog():
            trace = site.sample(rng)
            assert trace.intervals
            assert trace.duration > trace.intervals[-1].end - 1e-9

    def test_nominal_load_time_orders_sites(self):
        catalog = {s.name: s for s in default_catalog()}
        assert (
            catalog["static-blog"].nominal_load_s
            < catalog["video-portal"].nominal_load_s
        )

    def test_samples_vary(self):
        site = default_catalog()[0]
        rng = np.random.default_rng(1)
        a = site.sample(rng)
        b = site.sample(rng)
        assert a.duration != b.duration

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            LoadPhase("x", burst_s=0.0, gap_s=0.1)
        with pytest.raises(ValueError):
            LoadPhase("x", burst_s=0.1, gap_s=0.1, repeat=0)


class TestFeatures:
    def _events(self, spec):
        return [DetectedEvent(s, e) for s, e in spec]

    def test_vector_length_matches_names(self):
        events = self._events([(0.1, 0.2), (0.5, 0.8)])
        vec = features_from_events(events, 1.0)
        assert vec.size == len(FEATURE_NAMES)

    def test_total_active_and_duration(self):
        events = self._events([(0.1, 0.2), (0.5, 0.8)])
        vec = features_from_events(events, 1.0)
        named = dict(zip(FEATURE_NAMES, vec))
        assert named["total_active_s"] == pytest.approx(0.4)
        assert named["load_duration_s"] == pytest.approx(0.7)
        assert named["n_bursts"] == 2

    def test_empty_events_zero_vector(self):
        assert np.all(features_from_events([], 1.0) == 0)

    def test_early_fraction(self):
        front_loaded = self._events([(0.0, 0.4), (0.9, 1.0)])
        vec = dict(zip(FEATURE_NAMES, features_from_events(front_loaded, 1.0)))
        assert vec["early_activity_fraction"] > 0.5


class TestClassifier:
    def test_separable_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal([0, 0], 0.1, size=(20, 2))
        b = rng.normal([5, 5], 0.1, size=(20, 2))
        X = np.vstack([a, b])
        y = ["a"] * 20 + ["b"] * 20
        clf = NearestCentroidClassifier().fit(X, y)
        assert clf.predict(np.array([[0.1, -0.1], [5.2, 4.9]])) == ["a", "b"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NearestCentroidClassifier().predict(np.zeros((1, 2)))

    def test_constant_feature_does_not_crash(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0], [4.0, 7.0]])
        clf = NearestCentroidClassifier().fit(X, ["a", "a", "b", "b"])
        assert clf.predict_one(np.array([1.2, 7.0])) == "a"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier().fit(np.zeros(3), ["a", "b", "c"])

    def test_metrics(self):
        assert accuracy(["a", "b"], ["a", "a"]) == 0.5
        matrix, labels = confusion_matrix(["a", "b"], ["a", "a"])
        assert labels == ["a", "b"]
        assert matrix[1, 0] == 1


class TestEndToEnd:
    def test_fingerprinting_beats_chance(self):
        from repro.fingerprint import FingerprintExperiment, default_catalog

        exp = FingerprintExperiment(
            seed=3, catalog=default_catalog()[:4]
        )
        result = exp.run(loads_per_site=4, train_fraction=0.5)
        assert result.accuracy > 0.5  # chance = 0.25
        assert result.n_test == 8
