"""The batched runner's observational contract and sweep integration.

Beyond record bit-identity (test_identity), the batched path must be
*observationally* compatible: the trace stream (span names, cache
dispositions, stage keys, RNG digests, warm-group events) and the
metrics snapshot match the scalar engine exactly, modulo the additive
``batch.*`` instrumentation.  Plus the ``run_sweep(batch=...)`` wiring:
auto-engagement follows the executor decision, "off" forces the scalar
path, and the stats row says which path ran.
"""

from collections import Counter

import pytest

import repro.exec.executor as ex_mod
from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.obs.metrics import metrics_scope
from repro.obs.trace import collect_events
from repro.sweep.engine import run_sweep
from repro.sweep.presets import RECEIVER_GRID
from repro.sweep.spec import SweepSpec


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def receiver_spec(n=3, bits=24, seed=0):
    return SweepSpec(
        name="test-batch-runner",
        base={"bits": bits, "seed": seed},
        zips=[{"receiver": [None] + RECEIVER_GRID[: n - 1]}],
    )


def _sig(event):
    """An event's observable identity: everything except wall-clock."""
    return tuple(
        sorted(
            (k, v)
            for k, v in event.items()
            if k not in ("duration_s", "elapsed_s", "ts", "batch")
        )
    )


def _stream(events):
    """The comparable trace stream, with the additive batch.* events
    (kernel/chain/decode/executor spans) filtered out."""
    keep = []
    for event in events:
        name = event.get("name", "")
        if event.get("event") == "batch.executor":
            continue
        if event.get("event") == "span" and str(name).startswith("batch."):
            continue
        if event.get("event") == "cache":
            # Cache-layer op diagnostics: the batched path probes each
            # shared node once instead of once per trial - that dedupe
            # is the optimization, not an observable difference.
            continue
        keep.append(_sig(event))
    return keep


def _run_traced(spec, *, batch):
    reset_chain_cache()
    with execution_scope(cache_enabled=True):
        with collect_events() as events:
            outcome = run_sweep(spec, jobs=1, batch=batch)
    return outcome, events


class TestTraceParity:
    def test_cold_stream_matches_scalar_engine(self):
        spec = receiver_spec()
        scalar, scalar_events = _run_traced(spec, batch="off")
        batched, batch_events = _run_traced(spec, batch="on")
        assert batched.stats["batch"] == 1.0
        assert scalar.stats["batch"] == 0.0
        # Per-trial spans may interleave differently (phase-major), so
        # compare as multisets - every observable event must appear the
        # same number of times with identical attributes.
        assert Counter(_stream(batch_events)) == Counter(_stream(scalar_events))

    def test_warm_stream_matches_scalar_engine(self):
        spec = receiver_spec()
        results = {}
        for mode in ("off", "on"):
            reset_chain_cache()
            with execution_scope(cache_enabled=True):
                run_sweep(spec, jobs=1, batch=mode)  # warm the cache
                with collect_events() as events:
                    run_sweep(spec, jobs=1, batch=mode, resume=False)
            results[mode] = Counter(_stream(events))
        assert results["on"] == results["off"]

    def test_batch_spans_are_emitted(self):
        spec = receiver_spec()
        _, events = _run_traced(spec, batch="on")
        names = Counter(
            e["name"] for e in events if e.get("event") == "span"
        )
        assert names["batch.chain"] == 1
        assert names["batch.decode"] >= 1
        assert names["batch.kernel"] >= 1


class TestMetricsParity:
    def test_non_batch_metrics_identical(self):
        spec = receiver_spec()
        snaps = {}
        for mode in ("off", "on"):
            reset_chain_cache()
            with execution_scope(cache_enabled=True):
                with metrics_scope() as reg:
                    run_sweep(spec, jobs=1, batch=mode)
            snaps[mode] = reg.snapshot()
        scalar = {
            k: v for k, v in snaps["off"].items() if not k.startswith("batch.")
        }
        batched = {
            k: v for k, v in snaps["on"].items() if not k.startswith("batch.")
        }
        assert batched == scalar
        # And the batch path actually reported its own instruments.
        assert any(k.startswith("batch.") for k in snaps["on"])


class TestRunSweepWiring:
    def test_auto_engages_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr(ex_mod, "effective_cpus", lambda: 1)
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(receiver_spec(), jobs=4, batch="auto")
        assert outcome.stats["batch"] == 1.0

    def test_auto_keeps_scalar_path_on_many_cpus(self, monkeypatch):
        monkeypatch.setattr(ex_mod, "effective_cpus", lambda: 8)
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(receiver_spec(), jobs=1, batch="auto")
        # jobs=1 is still the reference batched-serial shape...
        assert outcome.stats["batch"] == 1.0
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(receiver_spec(), jobs=2, batch="auto")
        # ...but a real multi-worker request keeps the process pool.
        assert outcome.stats["batch"] == 0.0

    def test_off_forces_scalar_path(self, monkeypatch):
        monkeypatch.setattr(ex_mod, "effective_cpus", lambda: 1)
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(receiver_spec(), jobs=1, batch="off")
        assert outcome.stats["batch"] == 0.0

    def test_naive_never_batches(self):
        outcome = run_sweep(receiver_spec(), naive=True, batch="on")
        assert outcome.stats["batch"] == 0.0

    def test_forced_on_works_without_cache(self):
        with execution_scope(cache_enabled=False):
            outcome = run_sweep(receiver_spec(), jobs=1, batch="on")
        assert outcome.stats["batch"] == 1.0
        assert outcome.stats["warm_groups"] == 0.0

    def test_invalid_batch_value_rejected(self):
        with pytest.raises(ValueError, match="batch must be"):
            run_sweep(receiver_spec(), batch="sometimes")


class TestCli:
    def test_sweep_accepts_batch_flag(self, tmp_path, capsys):
        from repro.cli import main

        spec = receiver_spec(n=2)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(__import__("json").dumps(spec.to_mapping()))
        rc = main(
            [
                "sweep",
                str(spec_path),
                "--results",
                str(tmp_path / "out.jsonl"),
                "--batch",
                "on",
            ]
        )
        assert rc == 0
        assert "engine+batch" in capsys.readouterr().out
