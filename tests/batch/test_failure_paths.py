"""Degenerate and ragged inputs through the batched runner.

The batched path earns its keep on big regular grids, but the engine
hands it whatever a resume left pending: nothing at all, a single
straggler trial, or a ragged mix of groups whose receivers disagree on
FFT geometry and whose payloads disagree on length.  Each of those must
come back bit-identical to the scalar engine - the degenerate cases are
exactly where a vectorised implementation silently pads, truncates, or
divides by zero.
"""

import pytest

from repro.batch.chain import render_captures_batched
from repro.batch.runner import run_trials_batched, warm_map
from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.sweep.engine import run_sweep
from repro.sweep.plan import plan_sweep
from repro.sweep.spec import SweepSpec


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def comparable(record):
    out = dict(record)
    out.pop("elapsed_s")
    return out


def scalar_reference(spec):
    reset_chain_cache()
    return [
        comparable(r) for r in run_sweep(spec, naive=True, jobs=1).records
    ]


def ragged_spec():
    """Groups of unequal size and geometry: three receivers share one
    capture (one fat group), a different scenario contributes a
    singleton, and a second seed adds a group with a different payload
    length - nothing about the batch is rectangular."""
    return SweepSpec(
        name="test-batch-ragged",
        base={"bits": 24},
        zips=[
            {
                "receiver": [
                    None,
                    {"acquisition": {"fft_size": 256, "hop": 16}},
                    {"acquisition": {"fft_size": 512, "hop": 32}},
                    None,
                    None,
                ],
                "scenario": [
                    None,
                    None,
                    None,
                    {"kind": "distance", "distance_m": 1.0},
                    None,
                ],
                "seed": [0, 0, 0, 0, 3],
                "bits": [24, 24, 24, 24, 40],
            }
        ],
    )


class TestEmptyBatch:
    def test_no_pending_trials_is_a_clean_noop(self):
        plan = plan_sweep(SweepSpec(base={"bits": 24}))
        with execution_scope(cache_enabled=True):
            records, warm_groups = run_trials_batched(plan, [])
        assert records == []
        assert warm_groups == 0

    def test_no_chain_requests_resolve_to_nothing(self):
        with execution_scope(cache_enabled=False):
            assert render_captures_batched([]) == []

    def test_warm_map_ignores_groups_with_no_pending_consumer(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[
                {
                    "receiver": [
                        None,
                        {"acquisition": {"fft_size": 256, "hop": 16}},
                    ]
                }
            ],
        )
        plan = plan_sweep(spec)
        assert warm_map(plan, plan.trials) != {}
        assert warm_map(plan, []) == {}


class TestSingleTrialDegenerate:
    """A one-trial batch exercises every vector kernel at batch size
    one; the records must still match the scalar engine bit for bit."""

    def test_single_trial_matches_scalar(self):
        spec = SweepSpec(name="test-batch-single", base={"bits": 24})
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        assert plan.n_trials == 1
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            records, warm_groups = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in records] == reference
        # A singleton shares nothing, so nothing is warmable.
        assert warm_groups == 0

    def test_single_trial_without_cache(self):
        spec = SweepSpec(name="test-batch-single", base={"bits": 24})
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        with execution_scope(cache_enabled=False):
            records, warm_groups = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in records] == reference
        assert warm_groups == 0

    def test_engine_batch_on_single_trial(self):
        """``run_sweep(batch="on")`` with one trial takes the batched
        path end to end and still equals the scalar records."""
        spec = SweepSpec(name="test-batch-single", base={"bits": 24})
        reference = scalar_reference(spec)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(spec, jobs=1, batch="on")
        assert [comparable(r) for r in outcome.records] == reference


class TestRaggedGroups:
    def test_ragged_batch_matches_scalar(self):
        spec = ragged_spec()
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            records, _ = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in records] == reference

    def test_ragged_tail_after_partial_resume(self):
        """Resume topology: the fat group's first trial already ran
        (cache warm); the ragged remainder - including the singleton
        groups - must come back identical."""
        spec = ragged_spec()
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            head, _ = run_trials_batched(plan, plan.trials[:1])
            tail, _ = run_trials_batched(plan, plan.trials[1:])
        got = [comparable(r) for r in head + tail]
        assert got == reference

    def test_mixed_payload_lengths_do_not_bleed(self):
        """The 40-bit trial and the 24-bit trials decode from the same
        batch; per-trial bit counts must come from each trial's own
        payload, not a shared pad."""
        spec = ragged_spec()
        plan = plan_sweep(spec)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            records, _ = run_trials_batched(plan, plan.trials)
        by_id = {r["trial_id"]: r for r in records}
        for tp in plan.trials:
            expected_bits = tp.trial.bits
            assert by_id[tp.trial_id]["trial"]["bits"] == expected_bits
