"""Per-kernel bit-identity pins: stacked == scalar, element for element.

Each batched kernel claims a provable equivalence to its scalar
counterpart (same FFT sizes, same accumulation order).  These tests pin
that claim with ``array_equal`` - not ``allclose`` - against the actual
scalar code paths, including the chunked variants (chunking along the
trial axis must be invisible).
"""

import numpy as np
import pytest
from scipy import signal as sps

import repro.batch.kernels as kernels_mod
from repro.batch.kernels import (
    EnvelopeRequest,
    batched_band_energy,
    batched_bincount,
    batched_convolve_full,
    batched_decimate,
    batched_mix,
    check_frames,
    empty_spectrogram,
    envelope_times,
)
from repro.dsp.stft import stft
from repro.sdr.frontend import decimate, mix_to_baseband


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestBatchedBincount:
    def test_matches_per_row_bincount(self, rng):
        length = 500
        indices = [
            rng.integers(0, length, size=n) for n in (17, 400, 3)
        ]
        deposits = [rng.standard_normal(idx.size) for idx in indices]
        out = batched_bincount(indices, deposits, length)
        for row, idx, dep in zip(out, indices, deposits):
            ref = np.bincount(idx, weights=dep, minlength=length)
            assert np.array_equal(row, ref)

    def test_empty_rows_stay_zero(self, rng):
        indices = [np.empty(0, dtype=np.int64), rng.integers(0, 8, size=5)]
        deposits = [np.empty(0), rng.standard_normal(5)]
        out = batched_bincount(indices, deposits, 8)
        assert np.array_equal(out[0], np.zeros(8))
        ref = np.bincount(indices[1], weights=deposits[1], minlength=8)
        assert np.array_equal(out[1], ref)

    def test_all_empty_batch(self):
        out = batched_bincount([np.empty(0, dtype=np.int64)], [np.empty(0)], 4)
        assert np.array_equal(out, np.zeros((1, 4)))


class TestBatchedConvolve:
    def test_matches_per_row_fftconvolve(self, rng):
        stack = rng.standard_normal((5, 700))
        kernel = rng.standard_normal(43)
        out = batched_convolve_full(stack, kernel, 700)
        for row, raw in zip(out, stack):
            ref = sps.fftconvolve(raw, kernel)[:700]
            assert np.array_equal(row, ref)

    def test_chunked_equals_unchunked(self, rng, monkeypatch):
        stack = rng.standard_normal((7, 300))
        kernel = rng.standard_normal(11)
        whole = batched_convolve_full(stack, kernel, 300)
        monkeypatch.setattr(kernels_mod, "CHUNK_BYTES", 1)  # row at a time
        chunked = batched_convolve_full(stack, kernel, 300)
        assert np.array_equal(whole, chunked)


class TestBatchedMix:
    def test_matches_scalar_mix(self, rng):
        stack = rng.standard_normal((4, 512))
        rate, center, offset = 1e6, 2.5e5, 12.5
        out = batched_mix(stack, rate, center, offset)
        for row, raw in zip(out, stack):
            ref = mix_to_baseband(raw, rate, center, oscillator_offset_hz=offset)
            assert np.array_equal(row, ref)

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError, match="sample rate"):
            batched_mix(rng.standard_normal((1, 8)), 0.0, 1.0, 0.0)


class TestBatchedDecimate:
    def test_matches_scalar_decimate(self, rng):
        stack = (
            rng.standard_normal((3, 1000)) + 1j * rng.standard_normal((3, 1000))
        )
        out = batched_decimate(stack, 4)
        for row, raw in zip(out, stack):
            assert np.array_equal(row, decimate(raw, 4))

    def test_factor_one_is_identity(self, rng):
        stack = rng.standard_normal((2, 64)) + 0j
        assert batched_decimate(stack, 1) is stack

    def test_rejects_bad_factor(self, rng):
        with pytest.raises(ValueError, match="factor"):
            batched_decimate(rng.standard_normal((1, 8)) + 0j, 0)

    def test_chunked_equals_unchunked(self, rng, monkeypatch):
        stack = (
            rng.standard_normal((5, 600)) + 1j * rng.standard_normal((5, 600))
        )
        whole = batched_decimate(stack, 3)
        monkeypatch.setattr(kernels_mod, "CHUNK_BYTES", 1)
        chunked = batched_decimate(stack, 3)
        assert np.array_equal(whole, chunked)


class TestBatchedBandEnergy:
    def _samples(self, rng, n=6000):
        return (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ).astype(np.complex64)

    def test_union_stft_matches_scalar_per_hop(self, rng):
        samples = self._samples(rng)
        fft_size = 128
        bins = np.array([3, 4, 5, 60, 61])
        hops = (16, 24, 32, 64)
        requests = [
            EnvelopeRequest(h, bins, check_frames(samples.size, fft_size, h))
            for h in hops
        ]
        outs = batched_band_energy(samples, fft_size, "hann", requests)
        for hop, y in zip(hops, outs):
            spec = stft(samples, 1e6, fft_size=fft_size, hop=hop, window="hann")
            assert np.array_equal(y, spec.band_energy(bins))

    def test_heterogeneous_bins_per_request(self, rng):
        samples = self._samples(rng)
        reqs = [
            EnvelopeRequest(32, np.array([1, 2]), check_frames(samples.size, 64, 32)),
            EnvelopeRequest(48, np.array([10, 11, 12]), check_frames(samples.size, 64, 48)),
        ]
        outs = batched_band_energy(samples, 64, "hann", reqs)
        for req, y in zip(reqs, outs):
            spec = stft(samples, 1e6, fft_size=64, hop=req.hop, window="hann")
            assert np.array_equal(y, spec.band_energy(req.bins))

    def test_block_chunking_is_invisible(self, rng, monkeypatch):
        samples = self._samples(rng, n=3000)
        reqs = [
            EnvelopeRequest(32, np.array([5, 6]), check_frames(3000, 64, 32))
        ]
        whole = batched_band_energy(samples, 64, "hann", reqs)
        monkeypatch.setattr(kernels_mod, "CHUNK_BYTES", 64 * 16 * 2 * 7)
        chunked = batched_band_energy(samples, 64, "hann", reqs)
        assert np.array_equal(whole[0], chunked[0])

    def test_no_requests(self, rng):
        assert batched_band_energy(self._samples(rng), 64, "hann", []) == []


class TestFrameHelpers:
    def test_check_frames_matches_scalar_error(self):
        with pytest.raises(ValueError) as batch_err:
            check_frames(10, 64, 8)
        with pytest.raises(ValueError) as scalar_err:
            stft(np.zeros(10, dtype=complex), 1e6, fft_size=64, hop=8)
        assert str(batch_err.value) == str(scalar_err.value)

    def test_envelope_axes_match_scalar_spectrogram(self):
        rng = np.random.default_rng(7)
        samples = (
            rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        ).astype(np.complex64)
        spec = stft(samples, 5e5, fft_size=128, hop=32, window="hann")
        axes = empty_spectrogram(128, 32, 5e5)
        assert np.array_equal(axes.frequencies, spec.frequencies)
        assert axes.frame_rate == spec.frame_rate
        times = envelope_times(spec.times.size, 128, 32, 5e5)
        assert np.array_equal(times, spec.times)

    def test_empty_spectrogram_carries_no_magnitudes(self):
        assert empty_spectrogram(64, 16, 1e6).magnitudes.size == 0
