"""Bit-identity of the batched path against the scalar references.

The non-negotiable from the batch engine's contract: any partition of a
trial set into batches - including all-singletons - produces records
byte-identical to the scalar sweep (bits digests, BER, RNG exit
digests, thresholds).  Plus the golden-capture pin: the batched chain
renders the committed fixed-seed snapshot bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.chain import ChainRequest, render_captures_batched
from repro.batch.runner import run_trials_batched
from repro.chain import capture_chain_keys
from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.sweep.engine import run_sweep
from repro.sweep.plan import plan_sweep
from repro.sweep.presets import RECEIVER_GRID
from repro.sweep.spec import SweepSpec


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def mixed_spec(bits=24):
    """A sweep whose DAG has real structure: two scenarios x two
    receivers over one digital prefix (emission shared by all four,
    two capture nodes with fan-out two)."""
    return SweepSpec(
        name="test-batch-mixed",
        base={"bits": bits},
        grid={
            "scenario": [None, {"kind": "distance", "distance_m": 1.0}],
            "receiver": [None, RECEIVER_GRID[0]],
        },
    )


def comparable(record):
    out = dict(record)
    out.pop("elapsed_s")
    return out


def scalar_reference(spec):
    reset_chain_cache()
    return [
        comparable(r) for r in run_sweep(spec, naive=True, jobs=1).records
    ]


class TestRecordIdentity:
    def test_batched_matches_naive(self):
        spec = mixed_spec()
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            records, _ = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in records] == reference

    def test_batched_matches_scalar_engine(self):
        spec = mixed_spec()
        plan = plan_sweep(spec)
        with execution_scope(cache_enabled=True):
            scalar = run_sweep(spec, plan=plan, jobs=1, batch="off")
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            records, warm_groups = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in records] == [
            comparable(r) for r in scalar.records
        ]
        assert float(warm_groups) == scalar.stats["warm_groups"]

    def test_dedupe_only_without_cache_matches_naive(self):
        spec = mixed_spec()
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        with execution_scope(cache_enabled=False):
            records, warm_groups = run_trials_batched(plan, plan.trials)
        assert warm_groups == 0
        assert [comparable(r) for r in records] == reference

    def test_warm_cache_rerun_identical(self):
        spec = mixed_spec()
        plan = plan_sweep(spec)
        with execution_scope(cache_enabled=True):
            cold, _ = run_trials_batched(plan, plan.trials)
            warm, _ = run_trials_batched(plan, plan.trials)
        assert [comparable(r) for r in cold] == [comparable(r) for r in warm]


class TestPartitionProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(cuts=st.sets(st.integers(min_value=1, max_value=3), max_size=3))
    def test_any_partition_is_byte_identical(self, cuts, reference_fixture):
        """Split the pending trials at arbitrary points; each batch runs
        through the batched engine against the accumulated cache (the
        resume topology).  Every partition must reproduce the scalar
        records exactly."""
        plan, reference = reference_fixture
        bounds = [0] + sorted(cuts) + [len(plan.trials)]
        reset_chain_cache()
        records = {}
        with execution_scope(cache_enabled=True):
            for lo, hi in zip(bounds, bounds[1:]):
                if lo == hi:
                    continue
                batch_records, _ = run_trials_batched(
                    plan, plan.trials[lo:hi]
                )
                for rec in batch_records:
                    records[rec["trial_id"]] = rec
        got = [
            comparable(records[tp.trial_id]) for tp in plan.trials
        ]
        assert got == reference

    @pytest.fixture(scope="class")
    def reference_fixture(self):
        spec = mixed_spec()
        reference = scalar_reference(spec)
        plan = plan_sweep(spec)
        return plan, reference


class TestGoldenCapture:
    def test_batched_chain_renders_the_golden_capture(self):
        """The committed fixed-seed snapshot, through the batched path."""
        from tests.test_golden_trace import golden_path, render_golden_capture
        from repro.em.environment import near_field_scenario
        from repro.chain import tuned_frequency_hz
        from repro.params import TINY
        from repro.systems.laptops import DELL_INSPIRON
        from repro.types import ActivityTrace, Interval

        path = golden_path()
        assert path.exists()
        golden = np.load(path)
        activity = ActivityTrace(
            [
                Interval(0.001, 0.003),
                Interval(0.005, 0.0065),
                Interval(0.007, 0.0075, level=0.5),
            ],
            duration=0.008,
        )
        scenario = near_field_scenario(
            tuned_frequency_hz(DELL_INSPIRON, TINY),
            physics_frequency_hz=1.5 * DELL_INSPIRON.vrm_frequency_hz,
        )
        rng = np.random.default_rng(42)
        entry_state = rng.bit_generator.state
        keys = capture_chain_keys(
            DELL_INSPIRON, activity, scenario, TINY, rng
        )
        with execution_scope(jobs=1, cache_enabled=False):
            resolved = render_captures_batched(
                [
                    ChainRequest(
                        machine=DELL_INSPIRON,
                        activity=activity,
                        scenario=scenario,
                        profile=TINY,
                        allow_c_states=True,
                        allow_p_states=True,
                        vrm_dithering=None,
                        keys=keys,
                        entry_state=entry_state,
                    )
                ]
            )
        capture = resolved[0].capture
        assert capture.samples.dtype == golden["samples"].dtype
        assert np.array_equal(capture.samples, golden["samples"]), (
            "batched chain diverged from the committed golden capture"
        )
        # And from the scalar render, state for state.
        scalar = render_golden_capture()
        assert np.array_equal(capture.samples, scalar.samples)
        assert capture.sample_rate == scalar.sample_rate
        assert capture.center_frequency == scalar.center_frequency
