"""Pin the bincount scatter-deposit against the np.add.at reference.

``EmissionModel.synthesize`` accumulates fractional-delay deposits with
one ``np.bincount`` pass; the original implementation used two
``np.add.at`` scatters plus a final-sample deposit.  Both perform the
same per-bin, in-order float additions, so the outputs must be
*bit-identical* - this test keeps the slow reference around and asserts
exact equality, including on trains engineered to pile many bursts into
the same output sample.
"""

import numpy as np
from scipy.signal import fftconvolve

from repro.types import BurstTrain
from repro.vrm.emission import EmissionModel


def add_at_reference(model: EmissionModel, bursts: BurstTrain, sample_rate: float):
    """The pre-bincount synthesize, verbatim (ground truth)."""
    n_samples = int(round(bursts.duration * sample_rate))
    wave = np.zeros(max(n_samples, 1))
    if bursts.count == 0:
        return wave
    width_s = model.pulse_width_fraction * bursts.switching_period
    nominal_v = max(np.median(bursts.voltages), 1e-9)
    weights = (
        model.field_gain
        * (bursts.charges / width_s)
        * (bursts.voltages / nominal_v)
    )
    positions = bursts.times * sample_rate
    base = np.floor(positions).astype(np.int64)
    frac = positions - base
    interior = (base >= 0) & (base < n_samples - 1)
    np.add.at(wave, base[interior], weights[interior] * (1.0 - frac[interior]))
    np.add.at(wave, base[interior] + 1, weights[interior] * frac[interior])
    last = base == n_samples - 1
    np.add.at(wave, base[last], weights[last])
    kernel = model.pulse_kernel(sample_rate, bursts.switching_period)
    if kernel.size > 1:
        wave = fftconvolve(wave, kernel)[: wave.size]
    return wave


def random_train(seed: int, n: int = 400, duration: float = 1e-3) -> BurstTrain:
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, duration, size=n))
    return BurstTrain(
        times=times,
        charges=rng.uniform(5e-6, 30e-6, size=n),
        voltages=rng.uniform(0.8, 1.2, size=n),
        duration=duration,
        switching_period=1e-6,
    )


class TestBincountEquivalence:
    def test_bit_identical_on_random_trains(self):
        model = EmissionModel()
        for seed in range(5):
            bursts = random_train(seed)
            got = model.synthesize(bursts, 8e6)
            want = add_at_reference(model, bursts, 8e6)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)  # exact, not allclose

    def test_bit_identical_with_heavy_bin_collisions(self):
        # A sample rate low enough that ~40 bursts land in every output
        # sample: per-bin accumulation *order* is where bincount and
        # add.at could diverge, so force many collisions per bin.
        model = EmissionModel(field_gain=2.5)
        bursts = random_train(7, n=2000)
        sample_rate = 5e4  # 50 output samples for 2000 bursts
        got = model.synthesize(bursts, sample_rate)
        want = add_at_reference(model, bursts, sample_rate)
        assert np.array_equal(got, want)

    def test_bit_identical_with_final_sample_deposits(self):
        # Bursts at the very end of the train exercise the last-sample
        # branch (full weight, no right-hand neighbour).
        model = EmissionModel()
        duration = 1e-4
        times = np.array([duration * 0.5, duration - 1e-9, duration - 5e-10])
        bursts = BurstTrain(
            times=times,
            charges=np.full(3, 1e-5),
            voltages=np.full(3, 1.0),
            duration=duration,
            switching_period=1e-6,
        )
        got = model.synthesize(bursts, 1e6)
        want = add_at_reference(model, bursts, 1e6)
        assert np.array_equal(got, want)
