"""Tests for the buck converter's integrate-and-fire phase shedding."""

import numpy as np
import pytest

from repro.types import PiecewiseConstant
from repro.vrm.buck import BuckConverter, BuckDesign


def design(f0=1e6, max_load=16.0, shed=0.12, jitter=0.0):
    return BuckDesign(
        switching_frequency_hz=f0,
        max_load_a=max_load,
        shed_fraction=shed,
        period_jitter_rel=jitter,
    )


def constant_load(current, duration):
    return PiecewiseConstant(np.array([0.0]), np.array([current]), duration)


class TestFullLoad:
    def test_fires_every_period(self):
        buck = BuckConverter(design())
        bursts = buck.simulate(constant_load(16.0, 1e-3))
        assert bursts.count == pytest.approx(1000, abs=2)

    def test_burst_charge_equals_period_charge(self):
        buck = BuckConverter(design())
        bursts = buck.simulate(constant_load(16.0, 1e-4))
        expected = 16.0 * 1e-6
        assert np.allclose(bursts.charges[1:], expected)

    def test_spectral_line_amplitude_tracks_current(self):
        # Line amplitude at f0 ~ charge per period / period ~ load amps.
        buck = BuckConverter(design())
        hi = buck.simulate(constant_load(16.0, 1e-3))
        lo = buck.simulate(constant_load(8.0, 1e-3))
        rate_hi = hi.count / 1e-3
        rate_lo = lo.count / 1e-3
        amp_hi = np.median(hi.charges) * rate_hi
        amp_lo = np.median(lo.charges) * rate_lo
        assert amp_hi / amp_lo == pytest.approx(2.0, rel=0.05)


class TestPhaseShedding:
    def test_light_load_sheds_periods(self):
        buck = BuckConverter(design())
        light = buck.simulate(constant_load(0.15, 1e-3))
        # 0.15 A against a 1.92 A*us fire threshold: roughly every 13th
        # period fires.
        assert 50 < light.count < 110

    def test_shed_burst_charge_is_fire_threshold(self):
        d = design()
        buck = BuckConverter(d)
        light = buck.simulate(constant_load(0.15, 1e-3))
        assert np.median(light.charges) == pytest.approx(
            d.fire_charge_c, rel=0.15
        )

    def test_shedding_threshold_boundary(self):
        d = design(shed=0.12)
        buck = BuckConverter(d)
        at_threshold = buck.simulate(constant_load(0.12 * 16.0, 1e-4))
        assert at_threshold.count == pytest.approx(100, abs=2)

    def test_zero_load_never_fires(self):
        buck = BuckConverter(design())
        bursts = buck.simulate(constant_load(0.0, 1e-3))
        assert bursts.count == 0


class TestChargeConservation:
    def test_total_charge_delivered_matches_load(self):
        # Integral of load current ~ total burst charge (plus the final
        # not-yet-fired deficit, bounded by one fire quantum).
        d = design()
        buck = BuckConverter(d)
        for current in (0.15, 1.0, 8.0, 16.0):
            bursts = buck.simulate(constant_load(current, 2e-3))
            drawn = current * 2e-3
            delivered = bursts.charges.sum()
            assert abs(drawn - delivered) <= max(
                d.fire_charge_c, current * d.period_s
            ) + 1e-12

    def test_deficit_carries_across_segments(self):
        d = design()
        buck = BuckConverter(d)
        # Two light-load half-segments must fire like one continuous one.
        split = PiecewiseConstant(
            np.array([0.0, 1e-3]), np.array([0.15, 0.15]), 2e-3
        )
        merged = constant_load(0.15, 2e-3)
        assert buck.simulate(split).count == pytest.approx(
            BuckConverter(d).simulate(merged).count, abs=1
        )


class TestTransitions:
    def test_active_idle_trace_modulates_rate(self):
        d = design()
        buck = BuckConverter(d)
        load = PiecewiseConstant(
            np.array([0.0, 1e-3]), np.array([16.0, 0.15]), 2e-3
        )
        bursts = buck.simulate(load)
        active = np.count_nonzero(bursts.times < 1e-3)
        idle = np.count_nonzero(bursts.times >= 1e-3)
        assert active > 8 * idle

    def test_voltage_recorded_per_burst(self):
        d = design()
        buck = BuckConverter(d)
        load = constant_load(16.0, 1e-4)
        volts = PiecewiseConstant(np.array([0.0]), np.array([0.8]), 1e-4)
        bursts = buck.simulate(load, volts)
        assert np.allclose(bursts.voltages, 0.8)

    def test_jitter_perturbs_times(self):
        smooth = BuckConverter(design(jitter=0.0)).simulate(
            constant_load(16.0, 1e-4)
        )
        jittered = BuckConverter(
            design(jitter=0.01), rng=np.random.default_rng(3)
        ).simulate(constant_load(16.0, 1e-4))
        assert not np.allclose(
            smooth.times[: jittered.count], jittered.times[: smooth.count]
        )


class TestDesignValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            BuckDesign(switching_frequency_hz=0.0)

    def test_rejects_bad_shed_fraction(self):
        with pytest.raises(ValueError):
            BuckDesign(switching_frequency_hz=1e6, shed_fraction=1.5)

    def test_fire_charge_formula(self):
        d = design(f0=1e6, max_load=10.0, shed=0.2)
        assert d.fire_charge_c == pytest.approx(0.2 * 10.0 * 1e-6)
