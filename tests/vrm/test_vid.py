"""Tests for the VID slew-rate interface."""

import numpy as np
import pytest

from repro.types import PiecewiseConstant
from repro.vrm.vid import VidInterface


class TestVid:
    def test_constant_request_passes_through(self):
        req = PiecewiseConstant(np.array([0.0]), np.array([1.1]), 1.0)
        out = VidInterface().apply(req)
        assert np.allclose(out.at(np.linspace(0, 0.99, 7)), 1.1)

    def test_step_becomes_ramp(self):
        req = PiecewiseConstant(
            np.array([0.0, 0.5]), np.array([0.7, 1.1]), 1.0
        )
        out = VidInterface(slew_v_per_s=10.0).apply(req)
        # 0.4 V at 10 V/s = 40 ms ramp; midway through it the voltage is
        # strictly between the endpoints.
        mid = out.at(np.array([0.5 + 0.02]))[0]
        assert 0.7 < mid < 1.1

    def test_reaches_target_after_ramp(self):
        req = PiecewiseConstant(
            np.array([0.0, 0.5]), np.array([0.7, 1.1]), 1.0
        )
        out = VidInterface(slew_v_per_s=100.0).apply(req)
        assert out.at(np.array([0.9]))[0] == pytest.approx(1.1)

    def test_fast_slew_approximates_request(self):
        req = PiecewiseConstant(
            np.array([0.0, 0.5]), np.array([0.7, 1.1]), 1.0
        )
        out = VidInterface(slew_v_per_s=1e6).apply(req)
        assert out.at(np.array([0.51]))[0] == pytest.approx(1.1)

    def test_empty_request_passes_through(self):
        req = PiecewiseConstant(np.empty(0), np.empty(0), 1.0)
        assert VidInterface().apply(req) is req

    def test_rejects_bad_slew(self):
        with pytest.raises(ValueError):
            VidInterface(slew_v_per_s=0.0)
