"""Tests for EM emission synthesis."""

import numpy as np
import pytest

from repro.types import BurstTrain, PiecewiseConstant
from repro.vrm.buck import BuckConverter, BuckDesign
from repro.vrm.emission import EmissionModel


def periodic_train(f0=1e6, duration=1e-3, charge=16e-6, voltage=1.1):
    period = 1.0 / f0
    times = np.arange(period, duration, period)
    return BurstTrain(
        times=times,
        charges=np.full(times.size, charge),
        voltages=np.full(times.size, voltage),
        duration=duration,
        switching_period=period,
    )


class TestSynthesis:
    def test_output_length_covers_duration(self):
        wave = EmissionModel().synthesize(periodic_train(), 8e6)
        assert wave.size == 8000

    def test_empty_train_is_silent(self):
        train = BurstTrain(
            np.empty(0), np.empty(0), np.empty(0), 1e-3, 1e-6
        )
        wave = EmissionModel().synthesize(train, 8e6)
        assert np.all(wave == 0)

    def test_spectrum_has_line_at_f0(self):
        f0 = 1e5
        fs = 8e5
        wave = EmissionModel().synthesize(periodic_train(f0=f0, duration=0.1), fs)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(wave.size, 1 / fs)
        line_bin = np.argmin(np.abs(freqs - f0))
        off_bin = np.argmin(np.abs(freqs - 0.5 * f0))
        assert spectrum[line_bin] > 20 * spectrum[off_bin]

    def test_spectrum_has_harmonics(self):
        f0 = 1e5
        fs = 8e5
        wave = EmissionModel().synthesize(periodic_train(f0=f0, duration=0.1), fs)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(wave.size, 1 / fs)
        h2 = spectrum[np.argmin(np.abs(freqs - 2 * f0))]
        background = np.median(spectrum)
        assert h2 > 10 * background

    def test_amplitude_proportional_to_charge(self):
        fs = 8e6
        w1 = EmissionModel().synthesize(periodic_train(charge=8e-6), fs)
        w2 = EmissionModel().synthesize(periodic_train(charge=16e-6), fs)
        assert np.abs(w2).max() == pytest.approx(2 * np.abs(w1).max(), rel=0.01)

    def test_field_gain_scales_output(self):
        fs = 8e6
        base = EmissionModel(field_gain=1.0).synthesize(periodic_train(), fs)
        doubled = EmissionModel(field_gain=2.0).synthesize(periodic_train(), fs)
        assert np.abs(doubled).max() == pytest.approx(
            2 * np.abs(base).max(), rel=1e-6
        )

    def test_voltage_modulates_amplitude(self):
        fs = 8e6
        train = periodic_train()
        low_v = BurstTrain(
            train.times,
            train.charges,
            np.full(train.count, 0.7),
            train.duration,
            train.switching_period,
        )
        # Voltages are normalised by their median, so a *mixed* train is
        # needed to see the relative effect.
        half = train.count // 2
        mixed_v = np.concatenate(
            [np.full(half, 0.7), np.full(train.count - half, 1.4)]
        )
        mixed = BurstTrain(
            train.times, train.charges, mixed_v, train.duration,
            train.switching_period,
        )
        wave = EmissionModel().synthesize(mixed, fs)
        first = np.abs(wave[: wave.size // 2]).max()
        second = np.abs(wave[wave.size // 2 :]).max()
        assert second > 1.5 * first

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            EmissionModel().synthesize(periodic_train(), 0.0)

    def test_rejects_bad_pulse_width(self):
        with pytest.raises(ValueError):
            EmissionModel(pulse_width_fraction=1.5)


class TestEndToEndVrm:
    def test_active_idle_ook_depth(self):
        """The full VRM story: load modulation -> strong OOK at f0."""
        f0 = 1e5
        fs = 8e5
        d = BuckDesign(switching_frequency_hz=f0)
        buck = BuckConverter(d, rng=np.random.default_rng(0))
        load = PiecewiseConstant(
            np.array([0.0, 0.05]), np.array([16.0, 0.15]), 0.1
        )
        wave = EmissionModel().synthesize(buck.simulate(load), fs)
        half = wave.size // 2
        window = np.hanning(half)

        def line_mag(segment):
            spectrum = np.abs(np.fft.rfft(segment * window))
            freqs = np.fft.rfftfreq(half, 1 / fs)
            return spectrum[np.argmin(np.abs(freqs - f0))]

        on = line_mag(wave[:half])
        off = line_mag(wave[half:])
        # Paper: idleness is amplitude-modulated onto the VRM line; the
        # current ratio is ~100x so the OOK depth should be large.
        assert on > 20 * off
