"""Shared fixtures.

Expensive end-to-end artifacts (a decoded covert-channel run, a typed
keystroke capture) are built once per session and shared by the tests
that only need to *inspect* them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_profile():
    return TINY


@pytest.fixture(scope="session")
def link_result():
    """One decoded near-field covert run (Dell Inspiron, 100 bits)."""
    payload = np.random.default_rng(99).integers(0, 2, size=100)
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=5)
    return link.run(payload)


@pytest.fixture(scope="session")
def keylog_artifacts():
    """One typed session: (keystrokes, capture, experiment)."""
    from repro.keylog.evaluate import KeylogExperiment

    exp = KeylogExperiment(seed=2)
    keystrokes, capture = exp.type_and_capture("the quick brown fox")
    return keystrokes, capture, exp
