"""Cross-module integration tests: the whole chain, end to end."""

import numpy as np
import pytest

from repro.chain import render_capture, render_emission, tuned_frequency_hz
from repro.core.coding import bits_to_bytes, bytes_to_bits, hamming_decode
from repro.core.pipeline import receive
from repro.core.sync import strip_header
from repro.covert.link import CovertLink
from repro.em.environment import near_field_scenario
from repro.params import TINY
from repro.power.workload import alternating_workload, idle_workload
from repro.systems.laptops import DELL_INSPIRON, TABLE_I


class TestFullExfiltration:
    def test_ascii_message_roundtrip(self):
        secret = b"attack at dawn"
        link = CovertLink(
            machine=DELL_INSPIRON, profile=TINY, seed=31, use_ecc=True
        )
        result = link.run(bytes_to_bits(secret))
        recovered = strip_header(result.decode.bits, link.frame_format)
        assert recovered is not None
        data, _ = hamming_decode(recovered)
        assert bits_to_bytes(data[: 8 * len(secret)]) == secret

    def test_receive_api_equivalent_to_manual_pipeline(self):
        secret = b"xyz"
        link = CovertLink(
            machine=DELL_INSPIRON, profile=TINY, seed=32, use_ecc=True
        )
        result = link.run(bytes_to_bits(secret))
        rx = receive(
            result.capture,
            link.vrm_frequency_hz,
            expected_bit_period_s=link.transmitter(
                np.random.default_rng(0)
            ).nominal_bit_duration_s(),
        )
        assert rx.payload_bytes[:3] == secret


class TestEmissionPhysics:
    def test_idle_system_emits_weakly(self):
        rng = np.random.default_rng(0)
        idle = render_emission(
            DELL_INSPIRON, idle_workload(TINY.dilate(5e-3)), TINY, rng
        )
        rng = np.random.default_rng(0)
        busy = render_emission(
            DELL_INSPIRON,
            alternating_workload(
                TINY.dilate(5e-3), TINY.dilate(2.4e-3), TINY.dilate(0.1e-3)
            ),
            TINY,
            rng,
        )
        assert np.abs(busy).mean() > 5 * np.abs(idle).mean()

    def test_capture_rate_matches_profile(self):
        rng = np.random.default_rng(1)
        scenario = near_field_scenario(
            tuned_frequency_hz(DELL_INSPIRON, TINY),
            physics_frequency_hz=1.5 * DELL_INSPIRON.vrm_frequency_hz,
        )
        capture = render_capture(
            DELL_INSPIRON,
            alternating_workload(
                TINY.dilate(5e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
            ),
            scenario,
            TINY,
            rng,
        )
        assert capture.sample_rate == pytest.approx(TINY.sdr_sample_rate_hz)


class TestAllMachines:
    @pytest.mark.parametrize("machine", TABLE_I, ids=lambda m: m.name)
    def test_channel_works_on_every_table_i_laptop(self, machine):
        payload = np.random.default_rng(7).integers(0, 2, size=60)
        result = CovertLink(machine=machine, profile=TINY, seed=8).run(payload)
        m = result.metrics
        assert m.ber < 0.05
        assert m.deletion_probability < 0.05
        assert m.insertion_probability < 0.05


class TestProfileInvariance:
    def test_paper_profile_full_scale(self):
        # The real rates: 970 kHz VRM line synthesised at 9.6 MS/s and
        # captured at the RTL-SDR's true 2.4 MS/s.  Scale invariance is
        # the design's core claim; this runs the actual paper scale.
        from repro.params import PAPER

        payload = np.random.default_rng(0).integers(0, 2, size=120)
        result = CovertLink(profile=PAPER, seed=9).run(payload)
        assert result.capture.sample_rate == pytest.approx(2.4e6)
        assert result.metrics.ber < 0.02
        assert 2500 < result.transmission_rate_bps < 4500

    def test_reduced_profile_reproduces_tiny_quality(self):
        # The same link at 10x less time dilation must behave the same
        # (this is the core property the scaling design relies on).
        from repro.params import REDUCED

        payload = np.random.default_rng(3).integers(0, 2, size=60)
        tiny = CovertLink(profile=TINY, seed=4).run(payload)
        reduced = CovertLink(profile=REDUCED, seed=4).run(payload)
        assert reduced.metrics.ber <= tiny.metrics.ber + 0.03
        assert reduced.transmission_rate_bps == pytest.approx(
            tiny.transmission_rate_bps, rel=0.1
        )
