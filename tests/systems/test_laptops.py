"""Tests for the Table I machine configurations."""

import numpy as np
import pytest

from repro.osmodel.timers import UnixUsleep, WindowsSleep
from repro.params import PAPER, TINY
from repro.power.governor import OndemandGovernor, SpeedShiftGovernor
from repro.systems.laptops import TABLE_I, by_name


class TestTableI:
    def test_six_machines(self):
        assert len(TABLE_I) == 6

    def test_vendor_os_arch_match_paper(self):
        rows = {(m.os_name.split(" ")[0], m.architecture) for m in TABLE_I}
        assert ("Windows", "Kaby Lake") in rows
        assert ("macOS", "Broadwell") in rows
        assert ("Linux", "Haswell") in rows
        assert ("macOS", "Coffee Lake") in rows
        assert ("Linux", "SkyLake") in rows
        assert ("Windows", "Ivy Bridge") in rows

    def test_vrm_frequencies_in_paper_band(self):
        for m in TABLE_I:
            assert 250e3 <= m.vrm_frequency_hz <= 1.1e6

    def test_windows_machines_use_coarse_sleep(self):
        for m in TABLE_I:
            timer = m.sleep_timer(np.random.default_rng(0), PAPER)
            if m.is_windows:
                assert isinstance(timer, WindowsSleep)
            else:
                assert isinstance(timer, UnixUsleep)

    def test_modern_architectures_use_speed_shift(self):
        expectations = {
            "Kaby Lake": SpeedShiftGovernor,
            "Broadwell": OndemandGovernor,
            "Haswell": OndemandGovernor,
            "Coffee Lake": SpeedShiftGovernor,
            "SkyLake": SpeedShiftGovernor,
            "Ivy Bridge": OndemandGovernor,
        }
        for m in TABLE_I:
            table = m.power_table()
            gov = m.governor(table, PAPER)
            assert isinstance(gov, expectations[m.architecture])

    def test_unix_bits_are_symmetric(self):
        # The paper sets LOOP_PERIOD so active ~ idle; realised one-bit
        # and zero-bit durations should be within ~15% of each other.
        for m in TABLE_I:
            if m.is_windows:
                continue
            one = m.active_period_s + m.sleep_period_s + 10e-6
            zero = 12e-6 + 2 * (m.sleep_period_s + 10e-6)
            assert one == pytest.approx(zero, rel=0.15)

    def test_buck_design_scales_with_profile(self):
        m = TABLE_I[0]
        paper_design = m.buck_design(PAPER)
        tiny_design = m.buck_design(TINY)
        assert paper_design.switching_frequency_hz == pytest.approx(
            100 * tiny_design.switching_frequency_hz
        )


class TestLookup:
    def test_by_name_substring(self):
        assert by_name("inspiron").architecture == "Haswell"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="no machine"):
            by_name("thinkstation")

    def test_ambiguous_name(self):
        with pytest.raises(KeyError, match="ambiguous"):
            by_name("dell")
