"""Smoke + shape tests for every experiment in the registry.

These assert the *paper's qualitative claims* on quick-mode runs:
orderings, appearance/disappearance of effects, and metric bands -
never exact numbers.
"""

import pytest

from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        ids = set(list_experiments())
        assert {
            "fig2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig11",
            "sec3",
            "table2",
            "table3",
            "table4",
            "background",
        } <= ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table9")


class TestRendering:
    def test_render_produces_table(self):
        result = ExperimentResult(
            "x", "demo", [{"a": 1, "b": 0.5}, {"a": 2, "b": 1e-6}], ["note"]
        )
        text = result.render()
        assert "demo" in text
        assert "note" in text
        assert "1e-06" in text.replace("1.00e-06", "1e-06")


@pytest.fixture(scope="module")
def fig2():
    return get_experiment("fig2")(seed=1)


@pytest.fixture(scope="module")
def sec3():
    return get_experiment("sec3")(seed=1)


class TestFig2:
    def test_both_components_strongly_keyed(self, fig2):
        by_component = {r["component"]: r for r in fig2.rows}
        assert by_component["1*f0"]["on_off_contrast"] > 5
        assert by_component["2*f0"]["on_off_contrast"] > 5

    def test_lines_stand_out_of_background(self, fig2):
        by_component = {r["component"]: r for r in fig2.rows}
        assert by_component["1*f0"]["line_to_background"] > 5

    def test_alternation_period_matches_workload(self, fig2):
        row = [r for r in fig2.rows if r["component"] == "alternation"][0]
        assert row["measured_period_s_paper_scale"] == pytest.approx(
            row["expected_period_s_paper_scale"], rel=0.15
        )


class TestSec3:
    def test_channel_present_unless_both_disabled(self, sec3):
        rows = {r["bios_config"]: r for r in sec3.rows}
        assert rows["C+P enabled"]["spikes_present"]
        assert rows["C disabled"]["spikes_present"]
        assert rows["P disabled"]["spikes_present"]
        assert not rows["C+P disabled"]["spikes_present"]

    def test_both_disabled_is_continuously_strong(self, sec3):
        rows = {r["bios_config"]: r for r in sec3.rows}
        assert (
            rows["C+P disabled"]["envelope_mean"]
            > rows["C+P enabled"]["envelope_mean"]
        )
        assert rows["C+P disabled"]["modulation_depth"] < 0.1


class TestFig9:
    def test_speedup_over_three_x(self):
        result = get_experiment("fig9")(seed=1)
        speedup = [
            r for r in result.rows if r["channel"].startswith("speedup")
        ][0]["rate_bps"]
        assert speedup > 3.0

    def test_ordering_matches_paper(self):
        result = get_experiment("fig9")(seed=1)
        rates = {
            r["channel"]: r["rate_bps"]
            for r in result.rows
            if not r["channel"].startswith("speedup")
        }
        ours = rates.pop("This work (PMU-EM)")
        assert ours > max(rates.values())
        assert rates["GSMem"] == max(rates.values())
        assert rates["Thermal"] == min(rates.values())


class TestTables:
    def test_table2_shape(self):
        result = get_experiment("table2")(seed=1)
        assert len(result.rows) == 6
        for row in result.rows:
            if "Windows" in row["OS"]:
                assert row["TR_bps"] < 1200
            else:
                assert 2500 < row["TR_bps"] < 4500
            assert row["BER"] < 0.05

    def test_table3_rate_falls_with_distance(self):
        result = get_experiment("table3")(seed=1)
        trs = [r["TR_bps"] for r in result.rows]
        # Row order: 1m full, 1m, 1.5m, 2.5m, wall - decreasing from
        # the second row on.
        assert trs[1] > trs[2] > trs[3] > trs[4]
        for row in result.rows[1:]:
            assert row["BER"] < 0.06

    def test_fig6_positive_skew(self):
        result = get_experiment("fig6")(seed=1)
        rows = {r["statistic"]: r["value"] for r in result.rows}
        assert rows["skewness (positive expected)"] > 0

    def test_fig7_threshold_between_modes(self):
        result = get_experiment("fig7")(seed=1)
        rows = {r["quantity"]: r["value"] for r in result.rows}
        assert rows["threshold between modes"]

    def test_fig11_counts_characters(self):
        result = get_experiment("fig11")(seed=1)
        rows = {r["quantity"]: r["value"] for r in result.rows}
        typed = rows["characters typed (incl. spaces)"]
        detected = rows["spikes detected"]
        assert abs(typed - detected) <= 2


class TestExtensions:
    def test_countermeasures_break_the_channel(self):
        result = get_experiment("countermeasures")(seed=1)
        rows = {r["countermeasure"]: r for r in result.rows}
        assert rows["none (baseline)"]["channel_usable"]
        assert not rows["disable P+C states"]["channel_usable"]
        assert not rows["VRM dithering +/-5%"]["channel_usable"]
        # Mild shielding alone does not break the near-field link.
        assert rows["EMI shield 20 dB"]["channel_usable"]

    def test_fingerprint_far_above_chance(self):
        result = get_experiment("fingerprint")(seed=1)
        row = result.rows[0]
        assert row["accuracy"] > 4 * row["chance"]

    def test_table4_scores_in_band(self):
        result = get_experiment("table4")(seed=1)
        for row in result.rows:
            assert row["char_TPR"] > 0.9
            assert row["word_recall"] > 0.85

    def test_fig8_storm_worse_than_quiet(self):
        result = get_experiment("fig8")(seed=1)
        rows = {r["condition"]: r for r in result.rows}
        assert (
            rows["interrupt storm"]["raw_BER"]
            >= rows["normal interrupts"]["raw_BER"]
        )

    def test_background_degrades_channel(self):
        result = get_experiment("background")(seed=0)
        rows = {r["condition"]: r for r in result.rows}
        quiet = rows["quiet, full rate"]
        loaded = rows["background, full rate"]
        assert loaded["BER"] + loaded["IP"] > quiet["BER"] + quiet["IP"]
        # Slowing down recovers the insertion rate (seed 0, as the
        # bench asserts; individual seeds vary).
        assert rows["background, rate -15%"]["IP"] <= loaded["IP"]
