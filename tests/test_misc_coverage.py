"""Coverage for small helpers not exercised elsewhere."""

import numpy as np
import pytest

from repro.baselines.base import ook_monte_carlo
from repro.experiments.common import ExperimentResult, _format
from repro.types import PowerStateTrace, StateResidency


class TestResultFormatting:
    def test_float_precision(self):
        assert _format(0.5) == "0.5"
        assert _format(0.0) == "0"
        assert _format(3e-6) == "3.00e-06"
        assert _format(123456.0) == "1.23e+05"

    def test_non_floats_pass_through(self):
        assert _format(7) == "7"
        assert _format("text") == "text"

    def test_columns_union_in_order(self):
        result = ExperimentResult(
            "x", "t", [{"a": 1}, {"a": 2, "b": 3}, {"c": 4}]
        )
        assert result.columns() == ["a", "b", "c"]

    def test_render_pads_missing_cells(self):
        result = ExperimentResult("x", "t", [{"a": 1}, {"b": 2}])
        text = result.render()
        assert "a" in text and "b" in text


class TestOokMonteCarlo:
    def test_high_snr_is_error_free(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=5000)
        assert ook_monte_carlo(bits, 12.0, rng) == 0.0

    def test_zero_snr_is_half(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=5000)
        assert ook_monte_carlo(bits, 0.0, rng) == pytest.approx(0.5, abs=0.05)

    def test_moderate_snr_matches_q_function(self):
        from scipy.stats import norm

        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=200_000)
        snr = 4.0
        measured = ook_monte_carlo(bits, snr, rng)
        expected = norm.sf(snr / 2)
        assert measured == pytest.approx(expected, rel=0.15)


class TestPowerStateTraceVoltage:
    def test_voltage_lookup(self):
        trace = PowerStateTrace(
            [StateResidency(0, 1, 0, 0), StateResidency(1, 2, 0, 6)], 2.0
        )
        volt = trace.voltage(lambda p, c: 1.1 if c == 0 else 0.6)
        assert volt.at(np.array([0.5, 1.5])) == pytest.approx([1.1, 0.6])


class TestScenarioSnrEstimate:
    def test_positive_for_strong_signal(self):
        from repro.em.environment import near_field_scenario

        scen = near_field_scenario(1.5e6, awgn_amplitude=1e-6)
        assert scen.snr_estimate_db(1.0) > 0

    def test_scales_with_noise_floor(self):
        from repro.em.environment import near_field_scenario

        quiet = near_field_scenario(1.5e6, awgn_amplitude=1e-6)
        loud = near_field_scenario(1.5e6, awgn_amplitude=1e-2)
        assert quiet.snr_estimate_db(1.0) > loud.snr_estimate_db(1.0)


class TestPacketFormatProperties:
    def test_uncoded_bits_accounting(self):
        from repro.covert.packets import PacketFormat

        fmt = PacketFormat(payload_bits=32, sequence_bits=8)
        assert fmt.uncoded_bits == 8 + 32 + 8

    def test_header_bits(self):
        from repro.covert.packets import PacketFormat

        assert PacketFormat(sequence_bits=12).header_bits == 12
