"""The key-DAG planner: node folding, warm marking, and laziness."""

import pytest

from repro.sweep.plan import STAGE_ORDER, WARMABLE, plan_sweep
from repro.sweep.spec import SweepSpec, TrialSpec
from repro.obs.trace import collect_events

ANALOG_SPANS = {"pmu", "vrm", "emission", "propagation", "sdr"}


def nodes_by_stage(plan):
    out = {}
    for node in plan.nodes:
        out.setdefault(node.stage, []).append(node)
    return out


class TestReceiverOnlySweep:
    """Receiver variants share the *entire* chain: one node per stage,
    with the capture node fanning out into every trial."""

    @pytest.fixture(scope="class")
    def plan(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[
                {
                    "receiver": [
                        None,
                        {"acquisition": {"fft_size": 256, "hop": 16}},
                        {"acquisition": {"fft_size": 512, "hop": 32}},
                    ]
                }
            ],
        )
        return plan_sweep(spec)

    def test_single_node_per_stage(self, plan):
        stages = nodes_by_stage(plan)
        assert set(stages) == {"pmu", "vrm", "emission", "capture"}
        assert all(len(nodes) == 1 for nodes in stages.values())

    def test_capture_fans_out_into_all_trials(self, plan):
        (capture,) = nodes_by_stage(plan)["capture"]
        assert capture.shared
        assert len(capture.children) == 3
        assert set(capture.children) == {tp.trial_id for tp in plan.trials}
        assert len(capture.trial_ids) == 3

    def test_only_capture_is_warmed(self, plan):
        warm = plan.warm_nodes()
        assert [n.stage for n in warm] == ["capture"]
        # pmu/vrm/emission each have exactly one child -> inline.
        for node in plan.nodes:
            if node.stage != "capture":
                assert not node.shared

    def test_accounting(self, plan):
        assert plan.n_trials == 3
        assert plan.naive_stage_runs == 12  # 3 trials x 4 stages
        assert plan.planned_stage_runs == 4
        assert plan.stages_saved == 8
        assert plan.sharing_factor == pytest.approx(3.0)

    def test_nodes_in_chain_order(self, plan):
        order = [STAGE_ORDER.index(n.stage) for n in plan.nodes]
        assert order == sorted(order)


class TestScenarioSweep:
    def test_scenarios_split_at_capture(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[
                {
                    "scenario": [
                        None,
                        {"kind": "distance", "distance_m": 1.0},
                    ]
                }
            ],
        )
        plan = plan_sweep(spec)
        stages = nodes_by_stage(plan)
        assert len(stages["emission"]) == 1
        assert len(stages["capture"]) == 2
        (emission,) = stages["emission"]
        assert emission.shared and len(emission.children) == 2
        assert [n.stage for n in plan.warm_nodes()] == ["emission"]
        for capture in stages["capture"]:
            assert not capture.shared


class TestDitheringSweep:
    def test_dithering_splits_at_vrm(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[{"dithering": [None, {"spread_rel": 0.05}]}],
        )
        plan = plan_sweep(spec)
        stages = nodes_by_stage(plan)
        (vrm,) = stages["vrm"]
        # One child is the dithered trial's dither key, the other the
        # undithered trial's emission key.
        assert vrm.shared and len(vrm.children) == 2
        assert len(stages["dither"]) == 1  # only the dithered trial
        assert len(stages["emission"]) == 2
        assert [n.stage for n in plan.warm_nodes()] == ["vrm"]


class TestPlannerGuards:
    def test_duplicate_physics_raises_despite_labels(self):
        trials = [
            TrialSpec(bits=24, label="first"),
            TrialSpec(bits=24, label="second"),
        ]
        with pytest.raises(ValueError, match="duplicate trials"):
            plan_sweep(trials)

    def test_planning_does_not_run_the_analog_chain(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[{"seed": [1, 2], "payload_index": [0, 1]}],
        )
        with collect_events() as events:
            plan = plan_sweep(spec)
        assert plan.n_trials == 2
        analog = [
            e
            for e in events
            if e.get("event") == "span" and e.get("name") in ANALOG_SPANS
        ]
        assert analog == []
        # But the plan itself is traced.
        assert any(
            e.get("event") == "span" and e.get("name") == "sweep.plan"
            for e in events
        )

    def test_seed_sweep_shares_nothing(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[{"seed": [1, 2], "payload_index": [0, 1]}],
        )
        plan = plan_sweep(spec)
        assert plan.stages_saved == 0
        assert plan.sharing_factor == pytest.approx(1.0)
        assert plan.warm_nodes() == []

    def test_warmable_subset_of_stage_order(self):
        assert set(WARMABLE) <= set(STAGE_ORDER)


class TestDescribeTrialGroups:
    """``repro sweep --plan`` must account for *every* trial.

    The node listing identifies work by anonymous key prefixes and the
    warm accounting only cares about fan-out > 1, so a grid that
    expanded to a single trial used to be invisible in the plan output.
    The group listing reports each deepest-node trial group - singleton
    groups included - by label.
    """

    def test_single_trial_grid_appears_in_describe(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[{"label": ["lonely"], "seed": [7]}],
        )
        plan = plan_sweep(spec)
        assert plan.n_trials == 1
        groups = plan.trial_groups()
        assert len(groups) == 1
        node, members = groups[0]
        assert len(members) == 1
        text = plan.describe()
        assert "lonely" in text
        assert "1 trial(s)" in text

    def test_every_label_listed_even_in_singleton_groups(self):
        # Two seeds share nothing (each is its own singleton group);
        # both labels must still appear in the plan output.
        spec = SweepSpec(
            base={"bits": 24},
            zips=[
                {
                    "label": ["run-a", "run-b"],
                    "seed": [1, 2],
                    "payload_index": [0, 1],
                }
            ],
        )
        plan = plan_sweep(spec)
        assert plan.warm_nodes() == []  # nothing shared...
        text = plan.describe()
        for label in ("run-a", "run-b"):  # ...yet every trial is listed
            assert label in text
        assert sum(len(m) for _, m in plan.trial_groups()) == plan.n_trials

    def test_unlabelled_trials_fall_back_to_trial_id(self):
        spec = SweepSpec(base={"bits": 24}, zips=[{"seed": [3]}])
        plan = plan_sweep(spec)
        (group,) = plan.trial_groups()
        _, members = group
        assert members[0].trial_id[:12] in plan.describe()

    def test_shared_capture_is_one_group(self):
        spec = SweepSpec(
            base={"bits": 24},
            zips=[
                {
                    "label": ["rx-a", "rx-b"],
                    "receiver": [
                        None,
                        {"acquisition": {"fft_size": 256, "hop": 16}},
                    ],
                }
            ],
        )
        plan = plan_sweep(spec)
        groups = plan.trial_groups()
        assert len(groups) == 1
        node, members = groups[0]
        assert node.stage == "capture"
        assert [tp.trial.label for tp in members] == ["rx-a", "rx-b"]
