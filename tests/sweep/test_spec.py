"""SweepSpec expansion, trial identity, and the data->object builders."""

import numpy as np
import pytest

from repro.core.decoder import DecoderConfig
from repro.params import TINY
from repro.sweep.spec import (
    SweepSpec,
    TrialSpec,
    build_decoder,
    build_link,
    digital_prefix_id,
    profile_fields,
    resolve_profile,
    trial_id,
    trial_payload,
)


class TestExpansion:
    def test_grid_cross_product_first_axis_slowest(self):
        spec = SweepSpec(
            grid={"seed": [1, 2], "bits": [30, 40, 50]},
        )
        trials = spec.trials()
        assert [(t.seed, t.bits) for t in trials] == [
            (1, 30), (1, 40), (1, 50), (2, 30), (2, 40), (2, 50),
        ]

    def test_zip_advances_in_lockstep_after_grid(self):
        spec = SweepSpec(
            grid={"bits": [30, 40]},
            zips=[{"seed": [10, 20], "payload_index": [0, 1]}],
        )
        trials = spec.trials()
        # zip is the fastest axis: runs stay contiguous per bits value.
        assert [(t.bits, t.seed, t.payload_index) for t in trials] == [
            (30, 10, 0), (30, 20, 1), (40, 10, 0), (40, 20, 1),
        ]

    def test_zip_length_mismatch_raises(self):
        spec = SweepSpec(zips=[{"seed": [1, 2], "payload_index": [0]}])
        with pytest.raises(ValueError, match="share a length"):
            spec.trials()

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown trial field"):
            SweepSpec(base={"nope": 1}).trials()
        with pytest.raises(ValueError, match="unknown trial field"):
            SweepSpec(grid={"frobnicate": [1]}).trials()

    def test_empty_grid_axis_raises(self):
        with pytest.raises(ValueError, match="has no values"):
            SweepSpec(grid={"seed": []}).trials()

    def test_base_only_yields_one_trial(self):
        trials = SweepSpec(base={"seed": 9}).trials()
        assert len(trials) == 1
        assert trials[0].seed == 9

    def test_overrides_patch_matching_trials(self):
        spec = SweepSpec(
            grid={"seed": [1, 2]},
            overrides=[{"where": {"seed": 2}, "set": {"rate_scale": 0.5}}],
        )
        trials = spec.trials()
        assert trials[0].rate_scale == 1.0
        assert trials[1].rate_scale == 0.5

    def test_override_without_where_matches_all(self):
        spec = SweepSpec(
            grid={"seed": [1, 2]},
            overrides=[{"set": {"bits": 64}}],
        )
        assert [t.bits for t in spec.trials()] == [64, 64]

    def test_mapping_round_trip(self):
        spec = SweepSpec(
            name="rt",
            base={"machine": "Inspiron"},
            grid={"seed": [1, 2]},
            zips=[{"bits": [30, 40], "payload_index": [0, 1]}],
            overrides=[{"where": {"seed": 2}, "set": {"rate_scale": 0.5}}],
        )
        clone = SweepSpec.from_mapping(spec.to_mapping())
        assert clone.trials() == spec.trials()
        assert clone.name == "rt"


class TestIdentity:
    def test_label_does_not_change_trial_id(self):
        a = TrialSpec(seed=1, label="x")
        b = TrialSpec(seed=1, label="y")
        assert trial_id(a) == trial_id(b)

    def test_physics_fields_change_trial_id(self):
        base = TrialSpec(seed=1)
        assert trial_id(base) != trial_id(TrialSpec(seed=2))
        assert trial_id(base) != trial_id(
            TrialSpec(seed=1, receiver={"batch_bits": 32})
        )
        assert trial_id(base) != trial_id(
            TrialSpec(seed=1, scenario={"kind": "distance", "distance_m": 1.0})
        )

    def test_digital_prefix_ignores_receiver_and_scenario(self):
        a = TrialSpec(seed=1)
        b = TrialSpec(
            seed=1,
            receiver={"batch_bits": 32},
            scenario={"kind": "distance", "distance_m": 1.0},
            dithering={"spread_rel": 0.05},
        )
        assert digital_prefix_id(a) == digital_prefix_id(b)
        assert digital_prefix_id(a) != digital_prefix_id(TrialSpec(seed=2))


class TestBuilders:
    def test_resolve_profile_name_and_fields(self):
        assert resolve_profile("tiny") == TINY
        assert resolve_profile(profile_fields(TINY)) == TINY

    def test_build_decoder_default_and_nested(self):
        assert build_decoder(None) == DecoderConfig()
        config = build_decoder(
            {"acquisition": {"fft_size": 512, "hop": 64}, "batch_bits": 32}
        )
        assert config.acquisition.fft_size == 512
        assert config.acquisition.hop == 64
        assert config.batch_bits == 32

    def test_build_link_materialises_trial(self):
        trial = TrialSpec(
            machine="Inspiron",
            profile="tiny",
            seed=3,
            rate_scale=0.5,
            scenario={"kind": "through_wall", "distance_m": 1.5},
        )
        link = build_link(trial)
        assert "Inspiron" in link.machine.name
        assert link.profile == TINY
        assert link.seed == 3
        assert link.rate_scale == 0.5
        assert link.scenario.wall is not None

    def test_unknown_scenario_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            build_link(TrialSpec(scenario={"kind": "submarine"}))

    def test_trial_payload_matches_evaluate_link_derivation(self):
        # evaluate_link draws payload i as the (i+1)-th sequential draw
        # from the seeded stream; trial_payload must reproduce that.
        rng = np.random.default_rng(1234)
        draws = [rng.integers(0, 2, size=40) for _ in range(3)]
        for i, want in enumerate(draws):
            got = trial_payload(
                TrialSpec(bits=40, payload_seed=1234, payload_index=i)
            )
            assert np.array_equal(got, want)
