"""The sweep executor: bit-identity vs naive, warm-once, resume.

The hard correctness bar from the engine's contract: a trial's record is
bit-identical whether it runs through the engine (cold cache, warm
cache, resumed, any jobs count) or via plain per-trial execution with
the cache disabled.  These tests assert full-record equality - bits
digests, BER, RNG exit digests, thresholds - not approximate closeness.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.obs.trace import collect_events
from repro.sweep.engine import pooled_metrics, run_sweep
from repro.sweep.presets import RECEIVER_GRID
from repro.sweep.spec import SweepSpec

ANALOG_SPANS = ("pmu", "vrm", "emission", "propagation", "sdr")


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_chain_cache()
    yield
    reset_chain_cache()


def receiver_spec(n=3, bits=24, seed=0):
    """A tiny receiver-only sweep: n trials sharing one full chain."""
    return SweepSpec(
        name="test-receivers",
        base={"bits": bits, "seed": seed},
        zips=[{"receiver": [None] + RECEIVER_GRID[: n - 1]}],
    )


def comparable(record):
    """A record minus its wall-clock field (everything else is physics)."""
    out = dict(record)
    out.pop("elapsed_s")
    return out


def assert_same_records(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert comparable(ra) == comparable(rb)


class TestBitIdentity:
    def test_cold_engine_matches_naive(self):
        spec = receiver_spec()
        naive = run_sweep(spec, naive=True)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            cold = run_sweep(spec)
        assert not cold.naive and naive.naive
        assert_same_records(naive.records, cold.records)
        # The identity is exact down to the decoded-bits and RNG digests.
        for rec in cold.records:
            assert len(rec["result"]["bits_sha"]) == 16
            assert rec["result"]["rng"]

    def test_warm_cache_rerun_identical(self):
        spec = receiver_spec()
        with execution_scope(cache_enabled=True):
            cold = run_sweep(spec)
            with collect_events() as events:
                warm = run_sweep(spec)
        assert_same_records(cold.records, warm.records)
        # Second run recomputed nothing on the analog chain.
        analog = [
            e
            for e in events
            if e.get("event") == "span" and e.get("name") in ANALOG_SPANS
        ]
        assert analog == []

    def test_multiprocess_engine_matches_naive(self):
        spec = receiver_spec()
        naive = run_sweep(spec, naive=True)
        reset_chain_cache()
        with execution_scope(cache_enabled=True):
            multi = run_sweep(spec, jobs=2)
        assert_same_records(naive.records, multi.records)


class TestWarmOnce:
    def test_analog_stages_execute_exactly_once(self):
        """The acceptance topology: N receiver configs, one chain."""
        spec = receiver_spec(n=4)
        with execution_scope(cache_enabled=True):
            with collect_events() as events:
                outcome = run_sweep(spec, jobs=1)
        assert outcome.executed == 4
        for stage in ANALOG_SPANS:
            runs = [
                e
                for e in events
                if e.get("event") == "span" and e.get("name") == stage
            ]
            assert len(runs) == 1, f"{stage} ran {len(runs)} times"
        groups = [e for e in events if e.get("name") == "sweep.group"]
        assert len(groups) == 1
        assert groups[0]["stage"] == "capture"
        assert groups[0]["fan_out"] == 4

    def test_naive_mode_runs_every_chain(self):
        spec = receiver_spec(n=3)
        with collect_events() as events:
            run_sweep(spec, naive=True)
        for stage in ANALOG_SPANS:
            runs = [
                e
                for e in events
                if e.get("event") == "span" and e.get("name") == stage
            ]
            assert len(runs) == 3

    def test_stats_surface_the_plan(self):
        spec = receiver_spec(n=3)
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(spec)
        assert outcome.stats["trials"] == 3
        assert outcome.stats["sharing_factor"] == pytest.approx(3.0)
        assert outcome.stats["warm_groups"] == 1


class TestResume:
    def test_resume_after_kill(self, tmp_path):
        spec = receiver_spec()
        path = tmp_path / "results.jsonl"
        with execution_scope(cache_enabled=True):
            full = run_sweep(spec, results_path=path, resume=False)
            # Kill mid-write: tear the last record's line.
            lines = path.read_text().splitlines(keepends=True)
            path.write_text("".join(lines[:-1]) + lines[-1][:20])
            resumed = run_sweep(spec, results_path=path, resume=True)
        assert resumed.resumed == 2
        assert resumed.executed == 1
        assert_same_records(full.records, resumed.records)

    def test_complete_store_resumes_everything(self, tmp_path):
        spec = receiver_spec()
        path = tmp_path / "results.jsonl"
        with execution_scope(cache_enabled=True):
            run_sweep(spec, results_path=path, resume=False)
            reset_chain_cache()  # even cold, nothing should execute
            with collect_events() as events:
                again = run_sweep(spec, results_path=path, resume=True)
        assert again.executed == 0
        assert again.resumed == 3
        # Nothing pending -> no warming either.
        assert not [e for e in events if e.get("name") == "sweep.group"]

    def test_records_are_json_round_trippable(self, tmp_path):
        spec = receiver_spec(n=2)
        path = tmp_path / "results.jsonl"
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(spec, results_path=path, resume=False)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record == outcome.record_for(record["trial_id"])


class TestPooledMetrics:
    def test_exact_integer_pooling(self):
        spec = receiver_spec(n=2)
        with execution_scope(cache_enabled=True):
            outcome = run_sweep(spec)
        pooled = pooled_metrics(outcome.records)
        assert pooled.transmitted == sum(
            r["result"]["transmitted"] for r in outcome.records
        )
        assert pooled.bit_errors == sum(
            r["result"]["bit_errors"] for r in outcome.records
        )


SCENARIOS = st.sampled_from(
    [None, {"kind": "distance", "distance_m": 1.0}]
)


class TestPropertyBitIdentity:
    """ISSUE satellite: for random small grids, sweep-engine results are
    bit-identical to per-trial naive execution - bits, BER, RNG digests -
    under cold cache, warm cache, and resume-after-kill."""

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        bits=st.integers(min_value=24, max_value=40),
        receivers=st.lists(
            st.sampled_from(RECEIVER_GRID), min_size=2, max_size=3, unique_by=str
        ),
        scenario=SCENARIOS,
    )
    def test_random_grid_bit_identical(
        self, tmp_path, seed, bits, receivers, scenario
    ):
        spec = SweepSpec(
            name="prop",
            base={"bits": bits, "seed": seed, "scenario": scenario},
            zips=[{"receiver": receivers}],
        )
        reset_chain_cache()
        naive = run_sweep(spec, naive=True)
        want = [comparable(r) for r in naive.records]

        path = tmp_path / f"prop-{seed}-{bits}.jsonl"
        path.unlink(missing_ok=True)
        with execution_scope(cache_enabled=True):
            reset_chain_cache()
            cold = run_sweep(spec, results_path=path, resume=False)
            warm = run_sweep(spec)
            lines = path.read_text().splitlines(keepends=True)
            path.write_text("".join(lines[:-1]) + lines[-1][:20])
            resumed = run_sweep(spec, results_path=path, resume=True)
        reset_chain_cache()

        for outcome in (cold, warm, resumed):
            got = [comparable(r) for r in outcome.records]
            assert got == want
        assert resumed.resumed == len(receivers) - 1
        assert resumed.executed == 1
