"""The JSONL result store: round trip, torn tails, foreign lines."""

import json

from repro.sweep.store import STORE_SCHEMA, ResultStore


def record(tid, **extra):
    return {"schema": STORE_SCHEMA, "trial_id": tid, **extra}


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(record("a", ber=0.1))
        store.append(record("b", ber=0.2))
        assert len(store) == 2

        fresh = ResultStore(path)
        loaded = fresh.load()
        assert set(loaded) == {"a", "b"}
        assert fresh.get("a")["ber"] == 0.1
        assert "b" in fresh
        assert sorted(r["trial_id"] for r in fresh) == ["a", "b"]

    def test_memory_only_store(self):
        store = ResultStore(None)
        store.append(record("a"))
        assert "a" in store
        assert store.load() == {}  # nothing persisted

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(record("a", ber=0.5))
        store.append(record("a", ber=0.1))
        fresh = ResultStore(path)
        fresh.load()
        assert len(fresh) == 1
        assert fresh.get("a")["ber"] == 0.1


class TestRobustLoad:
    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append(record("a"))
        store.append(record("b"))
        # Simulate a kill mid-write: truncate the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        fresh = ResultStore(path)
        loaded = fresh.load()
        assert set(loaded) == {"a"}

    def test_foreign_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        lines = [
            "",
            json.dumps({"schema": "other-v9", "trial_id": "x"}),
            json.dumps({"trial_id": "y"}),  # no schema
            json.dumps({"schema": STORE_SCHEMA}),  # no trial id
            json.dumps(["not", "a", "dict"]),
            json.dumps(record("good")),
        ]
        path.write_text("\n".join(lines) + "\n")
        store = ResultStore(path)
        assert set(store.load()) == {"good"}

    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.load() == {}
        assert len(store) == 0
