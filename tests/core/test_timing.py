"""Tests for signal timing: widths, signaling time, gap filling."""

import numpy as np
import pytest

from repro.core.timing import (
    analyze_pulse_widths,
    drop_spurious_starts,
    fill_missing_starts,
    pulse_widths,
    signaling_time,
)


class TestPulseWidths:
    def test_diffs(self):
        assert pulse_widths(np.array([0, 10, 25])).tolist() == [10, 15]

    def test_too_few_starts(self):
        assert pulse_widths(np.array([5])).size == 0

    def test_analyze_requires_two(self):
        with pytest.raises(ValueError):
            analyze_pulse_widths(np.array([3]))

    def test_analyze_reports_positive_skew(self):
        rng = np.random.default_rng(0)
        widths = 100 + rng.rayleigh(10, size=500)
        starts = np.concatenate([[0], np.cumsum(widths)])
        stats = analyze_pulse_widths(starts)
        assert stats.skewness > 0
        assert stats.median == pytest.approx(np.median(widths))


class TestSignalingTime:
    def test_clean_periodic_starts(self):
        starts = np.arange(0, 1000, 20)
        assert signaling_time(starts) == pytest.approx(20.0)

    def test_robust_to_missed_edges(self):
        # Half the edges missing: raw median would be 2 periods.
        rng = np.random.default_rng(1)
        starts = np.arange(0, 4000, 20.0)
        keep = rng.random(starts.size) > 0.5
        keep[:10] = True  # keep a clean run so the small cluster exists
        estimate = signaling_time(starts[keep])
        assert estimate == pytest.approx(20.0, rel=0.1)

    def test_hint_anchors_cluster(self):
        starts = np.concatenate([np.arange(0, 200, 20.0), [400, 800, 1200]])
        assert signaling_time(starts, hint=20.0) == pytest.approx(20.0)

    def test_requires_two_starts(self):
        with pytest.raises(ValueError):
            signaling_time(np.array([1.0]))


class TestFillMissing:
    def test_fills_double_gap(self):
        starts = np.array([0, 20, 60, 80])  # missing one at 40
        filled = fill_missing_starts(starts, 20.0, 100)
        assert 40 in filled.tolist()

    def test_fills_multiple_missing(self):
        starts = np.array([0, 80])
        filled = fill_missing_starts(starts, 20.0, 100)
        assert filled.tolist() == [0, 20, 40, 60, 80]

    def test_leaves_ambiguous_gap_alone(self):
        starts = np.array([0.0, 20.0, 51.0, 71.0])  # 31 = 1.55 periods
        filled = fill_missing_starts(starts, 20.0, 100)
        assert filled.size == starts.size

    def test_backfills_leading_gap(self):
        starts = np.array([40, 60, 80])
        filled = fill_missing_starts(starts, 20.0, 100)
        assert filled[0] in (0, 20)
        assert 20 in filled.tolist()

    def test_fills_trailing_gap(self):
        starts = np.array([0, 20, 40])
        filled = fill_missing_starts(starts, 20.0, 101)
        assert filled.max() >= 60

    def test_clips_to_total_frames(self):
        starts = np.array([0, 20])
        filled = fill_missing_starts(starts, 20.0, 30)
        assert filled.max() < 30

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            fill_missing_starts(np.array([0, 20]), 0.0, 100)


class TestDropSpurious:
    def test_drops_double_detection(self):
        starts = np.array([0, 3, 20, 40])
        kept = drop_spurious_starts(starts, 20.0)
        assert kept.tolist() == [0, 20, 40]

    def test_keeps_legitimate_starts(self):
        starts = np.array([0, 20, 40])
        assert drop_spurious_starts(starts, 20.0).tolist() == [0, 20, 40]

    def test_empty_input(self):
        assert drop_spurious_starts(np.array([]), 20.0).size == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            drop_spurious_starts(np.array([0.0]), -1.0)
