"""Tests for the matched-filter strawman receiver."""

import numpy as np
import pytest

from repro.core.acquisition import Envelope
from repro.core.align import align_bits
from repro.core.matched_filter import matched_filter_decode


def synchronous_envelope(bits, period=40):
    y = np.concatenate(
        [np.full(period, 10.0 if b else 0.5) for b in bits]
    )
    return Envelope(y, 1000.0, np.arange(y.size) / 1000.0)


class TestSynchronousCase:
    def test_decodes_perfectly_when_clock_is_true(self):
        bits = np.random.default_rng(0).integers(0, 2, size=64)
        env = synchronous_envelope(bits)
        decoded = matched_filter_decode(env, symbol_period_frames=40)
        assert np.array_equal(decoded[: bits.size], bits)

    def test_rejects_bad_period(self):
        env = synchronous_envelope([1, 0])
        with pytest.raises(ValueError):
            matched_filter_decode(env, 0)


class TestAsynchronousFailure:
    def test_clock_drift_destroys_decoding(self):
        # The paper's observation: symbol-length jitter quickly
        # misaligns a fixed receiver clock.
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=150)
        periods = 40 * (1 + 0.06 * rng.gamma(1.5, 1.0, size=bits.size))
        y = np.concatenate(
            [
                np.full(int(round(p)), 10.0 if b else 0.5)
                for b, p in zip(bits, periods)
            ]
        )
        env = Envelope(y, 1000.0, np.arange(y.size) / 1000.0)
        decoded = matched_filter_decode(env, symbol_period_frames=40)
        m = align_bits(bits, decoded[: bits.size])
        # Positionally compared (the matched filter has no indel
        # tolerance), errors pile up far beyond the batch receiver's.
        positional_errors = np.count_nonzero(
            decoded[: bits.size] != bits[: decoded.size]
        )
        assert positional_errors / bits.size > 0.1
