"""Tests for insertion/deletion-aware bit alignment."""

import numpy as np
import pytest

from repro.core.align import ChannelMetrics, align_bits


class TestExactCases:
    def test_identical_streams(self):
        m = align_bits([1, 0, 1, 1], [1, 0, 1, 1])
        assert (m.bit_errors, m.insertions, m.deletions) == (0, 0, 0)

    def test_single_substitution(self):
        m = align_bits([1, 0, 1, 1], [1, 1, 1, 1])
        assert m.bit_errors == 1
        assert m.insertions == 0
        assert m.deletions == 0

    def test_single_deletion(self):
        m = align_bits([1, 0, 1, 1, 0], [1, 0, 1, 0])
        assert m.deletions == 1
        assert m.bit_errors == 0

    def test_single_insertion(self):
        m = align_bits([1, 0, 1, 0], [1, 0, 1, 1, 0])
        assert m.insertions == 1
        assert m.bit_errors == 0

    def test_mixed_operations(self):
        tx = [1, 1, 0, 0, 1, 0, 1, 1]
        rx = [1, 0, 0, 1, 1, 0, 1, 1, 0]  # one sub region + one insert
        m = align_bits(tx, rx)
        assert m.insertions >= 1
        assert m.bit_errors + m.insertions + m.deletions <= 4

    def test_empty_tx(self):
        m = align_bits([], [1, 0])
        assert m.insertions == 2
        assert m.received == 2

    def test_empty_rx(self):
        m = align_bits([1, 0, 1], [])
        assert m.deletions == 3


class TestRates:
    def test_ber_normalised_by_transmitted(self):
        m = align_bits([1, 0, 1, 0], [1, 1, 1, 0])
        assert m.ber == pytest.approx(0.25)

    def test_rates_zero_when_nothing_sent(self):
        m = ChannelMetrics(0, 0, 0, 0, 0)
        assert m.ber == 0.0
        assert m.insertion_probability == 0.0
        assert m.deletion_probability == 0.0

    def test_combined_pools_counts(self):
        a = ChannelMetrics(1, 0, 2, 100, 98)
        b = ChannelMetrics(3, 1, 0, 100, 101)
        c = a.combined(b)
        assert c.bit_errors == 4
        assert c.transmitted == 200
        assert c.deletion_probability == pytest.approx(0.01)


class TestConsistency:
    def test_alignment_cost_is_minimal(self):
        # Total operations must equal the true edit distance on a case
        # with a known optimum.
        tx = [1, 0, 1, 0, 1, 0]
        rx = [0, 1, 0, 1, 0]  # delete first bit: distance 1
        m = align_bits(tx, rx)
        assert m.bit_errors + m.insertions + m.deletions == 1
        assert m.deletions == 1

    def test_random_streams_bounded_by_lengths(self):
        rng = np.random.default_rng(5)
        tx = rng.integers(0, 2, size=120)
        rx = rng.integers(0, 2, size=100)
        m = align_bits(tx, rx)
        assert m.deletions - m.insertions == 20
        assert m.bit_errors <= 100

    def test_burst_shift_counted_as_indel_not_errors(self):
        rng = np.random.default_rng(6)
        tx = rng.integers(0, 2, size=60)
        rx = np.delete(tx, 30)  # one deletion mid-stream
        m = align_bits(tx, rx)
        assert m.deletions == 1
        assert m.bit_errors == 0

    def test_long_streams_complete_quickly(self):
        rng = np.random.default_rng(7)
        tx = rng.integers(0, 2, size=2000)
        rx = tx.copy()
        m = align_bits(tx, rx)
        assert m.bit_errors == 0
