"""Tests for Eq. 2 power labeling."""

import numpy as np
import pytest

from repro.core.acquisition import Envelope
from repro.core.labeling import (
    bit_average_powers,
    label_bits,
    label_envelope_bits,
)


def envelope_for_bits(bits, period=40, high=10.0, low=0.5, seed=0):
    rng = np.random.default_rng(seed)
    y = np.concatenate(
        [np.full(period, high if b else low) for b in bits]
    )
    y += 0.1 * rng.standard_normal(y.size)
    return Envelope(np.abs(y), 1000.0, np.arange(y.size) / 1000.0)


class TestBitAveragePowers:
    def test_separates_levels(self):
        bits = [1, 0, 1, 1, 0]
        env = envelope_for_bits(bits)
        starts = np.arange(0, len(bits) * 40, 40)
        powers = bit_average_powers(env, starts)
        ones = powers[np.array(bits) == 1]
        zeros = powers[np.array(bits) == 0]
        assert ones.min() > 10 * zeros.max()

    def test_average_immune_to_longer_zero_bits(self):
        # Eq. 2's rationale: a zero whose period lasted longer must not
        # accumulate over the threshold.
        env = envelope_for_bits([1, 0], period=40)
        starts_long_zero = np.array([0, 40])  # zero runs to the end
        powers = bit_average_powers(env, starts_long_zero)
        env2 = envelope_for_bits([1, 0, 0], period=40)
        starts2 = np.array([0, 40])  # zero twice as long
        powers2 = bit_average_powers(env2, starts2)
        assert powers2[1] == pytest.approx(powers[1], rel=0.5)

    def test_skip_fraction_excludes_housekeeping_burst(self):
        y = np.full(100, 0.5)
        y[:10] = 10.0  # burst at the head of a zero bit
        env = Envelope(y, 1000.0, np.arange(100) / 1000.0)
        with_skip = bit_average_powers(env, np.array([0]), skip_fraction=0.15)
        without = bit_average_powers(env, np.array([0]), skip_fraction=0.0)
        assert with_skip[0] < without[0] / 2

    def test_empty_starts(self):
        env = envelope_for_bits([1])
        assert bit_average_powers(env, np.array([], dtype=int)).size == 0


class TestLabelBits:
    def test_adaptive_threshold_separates(self):
        rng = np.random.default_rng(1)
        powers = np.concatenate(
            [rng.normal(1.0, 0.1, 50), rng.normal(100.0, 5.0, 50)]
        )
        result = label_bits(powers)
        assert result.bits[:50].sum() == 0
        assert result.bits[50:].sum() == 50

    def test_explicit_threshold_respected(self):
        powers = np.array([1.0, 5.0, 9.0])
        result = label_bits(powers, threshold=4.0)
        assert result.bits.tolist() == [0, 1, 1]
        assert result.threshold == 4.0

    def test_empty_powers(self):
        result = label_bits(np.empty(0))
        assert result.bits.size == 0

    def test_label_envelope_bits_end_to_end(self):
        bits = [1, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]
        env = envelope_for_bits(bits)
        starts = np.arange(0, len(bits) * 40, 40)
        result = label_envelope_bits(env, starts)
        assert result.bits.tolist() == bits
