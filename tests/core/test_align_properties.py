"""Property-based tests for the edit-distance alignment (hypothesis).

The BER/IP/DP columns of Tables II and III are only meaningful if the
aligner attributes channel damage to the right operation class.  For
synthetic damage the optimal alignment is *provably* unique in count:

* deleting k bits from tx forces exactly (errors=0, ins=0, del=k):
  the length difference makes del - ins = k, so any alignment costs
  errors + 2*ins + k >= k, with equality only at the pure-deletion one;
* inserting k bits is the mirror image;
* substituting k bits keeps the lengths equal (ins == del) and can
  never cost more than the k substitutions that produced it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.align import align_bits


@st.composite
def stream_and_positions(draw, min_len=2, max_len=80, max_ops=6):
    bits = draw(
        st.lists(st.integers(0, 1), min_size=min_len, max_size=max_len)
    )
    k = draw(st.integers(1, min(max_ops, len(bits))))
    positions = draw(
        st.lists(
            st.integers(0, len(bits) - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return np.asarray(bits, dtype=int), sorted(positions)


class TestInjectedDeletions:
    @given(case=stream_and_positions())
    @settings(max_examples=80)
    def test_exactly_k_deletions(self, case):
        tx, positions = case
        rx = np.delete(tx, positions)
        m = align_bits(tx, rx)
        assert m.deletions == len(positions)
        assert m.insertions == 0
        assert m.bit_errors == 0
        assert m.deletion_probability == len(positions) / tx.size


class TestInjectedInsertions:
    @given(case=stream_and_positions())
    @settings(max_examples=80)
    def test_exactly_k_insertions(self, case):
        tx, positions = case
        # Insert the complement at each position so the insertions are
        # adversarial (they never extend an existing run for free).
        rx = tx
        for offset, pos in enumerate(positions):
            rx = np.insert(rx, pos + offset, 1 - tx[pos])
        m = align_bits(tx, rx)
        # Total cost is exactly k (the pure-insertion alignment) and
        # rx is longer by k, which pins ins = k, del = 0, errors = 0.
        assert m.insertions == len(positions)
        assert m.deletions == 0
        assert m.bit_errors == 0


class TestInjectedSubstitutions:
    @given(case=stream_and_positions())
    @settings(max_examples=80)
    def test_cost_bounded_by_k_with_balanced_indels(self, case):
        tx, positions = case
        rx = tx.copy()
        rx[positions] ^= 1
        m = align_bits(tx, rx)
        k = len(positions)
        # Equal lengths force ins == del; optimality bounds the total.
        assert m.insertions == m.deletions
        assert m.bit_errors + m.insertions + m.deletions <= k
        assert m.ber <= k / tx.size


class TestMetricsConsistency:
    @given(
        tx=st.lists(st.integers(0, 1), max_size=60),
        rx=st.lists(st.integers(0, 1), max_size=60),
    )
    @settings(max_examples=80)
    def test_counts_reconcile_lengths(self, tx, rx):
        m = align_bits(tx, rx)
        if tx and rx:
            assert m.transmitted == len(tx)
            assert m.received == len(rx)
        # The operation counts must explain the length difference.
        assert m.insertions - m.deletions == m.received - m.transmitted
        assert m.bit_errors >= 0
