"""Tests for channel coding: Hamming(7,4), parity, bit plumbing."""

import numpy as np
import pytest

from repro.core.coding import (
    ParityCode,
    as_bit_array,
    bits_to_bytes,
    bytes_to_bits,
    hamming_decode,
    hamming_encode,
)


class TestBitPlumbing:
    def test_bytes_roundtrip(self):
        data = b"\x00\xff\x5a\x13"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_msb_first(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_empty_bytes(self):
        assert bytes_to_bits(b"").size == 0

    def test_partial_byte_padded(self):
        assert bits_to_bytes(np.array([1, 0, 1])) == b"\xa0"

    def test_as_bit_array_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="0 or 1"):
            as_bit_array([0, 2, 1])

    def test_as_bit_array_accepts_iterables(self):
        assert as_bit_array((1, 0, 1)).tolist() == [1, 0, 1]


class TestHamming:
    def test_rate(self):
        code = hamming_encode(np.zeros(8, dtype=int))
        assert code.size == 14

    def test_clean_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=64)
        decoded, corrected = hamming_decode(hamming_encode(data))
        assert np.array_equal(decoded, data)
        assert corrected == 0

    def test_corrects_any_single_error_per_codeword(self):
        data = np.array([1, 0, 1, 1])
        code = hamming_encode(data)
        for position in range(7):
            corrupted = code.copy()
            corrupted[position] ^= 1
            decoded, corrected = hamming_decode(corrupted)
            assert np.array_equal(decoded, data), f"failed at bit {position}"
            assert corrected == 1

    def test_each_codeword_corrected_independently(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=40)  # 10 codewords
        code = hamming_encode(data)
        corrupted = code.copy()
        corrupted[3] ^= 1
        corrupted[7 * 5 + 6] ^= 1
        decoded, corrected = hamming_decode(corrupted)
        assert np.array_equal(decoded, data)
        assert corrected == 2

    def test_double_error_not_corrected(self):
        data = np.array([1, 0, 1, 1])
        corrupted = hamming_encode(data).copy()
        corrupted[0] ^= 1
        corrupted[1] ^= 1
        decoded, _ = hamming_decode(corrupted)
        assert not np.array_equal(decoded, data)

    def test_minimum_distance_is_three(self):
        codewords = [hamming_encode(np.array(
            [int(b) for b in format(i, "04b")]
        )) for i in range(16)]
        for i in range(16):
            for j in range(i + 1, 16):
                dist = int(np.count_nonzero(codewords[i] != codewords[j]))
                assert dist >= 3

    def test_pads_partial_block(self):
        decoded, _ = hamming_decode(hamming_encode(np.array([1, 1])))
        assert decoded[:2].tolist() == [1, 1]

    def test_trailing_partial_codeword_dropped(self):
        code = hamming_encode(np.array([1, 0, 1, 1]))
        decoded, _ = hamming_decode(np.concatenate([code, [1, 0, 1]]))
        assert decoded.size == 4


class TestParityCode:
    def test_roundtrip(self):
        code = ParityCode(block_size=7)
        data = np.random.default_rng(2).integers(0, 2, size=21)
        decoded, errors = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)
        assert errors == 0

    def test_detects_single_error(self):
        code = ParityCode(block_size=4)
        encoded = code.encode(np.array([1, 0, 1, 0]))
        corrupted = encoded.copy()
        corrupted[1] ^= 1
        _, errors = code.decode(corrupted)
        assert errors == 1

    def test_even_parity(self):
        code = ParityCode(block_size=3)
        encoded = code.encode(np.array([1, 1, 0]))
        assert encoded.sum() % 2 == 0

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            ParityCode(block_size=0)
