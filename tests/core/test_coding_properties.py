"""Property-based tests for the channel codes (hypothesis).

Two claims the covert receiver leans on, stated as properties rather
than examples:

* the RZ line code is lossless: decode(encode(bits)) == bits for every
  bit stream, including under a trailing partial chip pair;
* Hamming(7,4) corrects *every* single-bit error - exhaustively over
  all 16 data words x 7 flip positions, and over random multi-block
  streams with at most one flip per codeword.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coding import (
    hamming_decode,
    hamming_encode,
    rz_decode,
    rz_encode,
)

bit_lists = st.lists(st.integers(0, 1), max_size=256)


class TestRzProperties:
    @given(bits=bit_lists)
    def test_round_trip_identity(self, bits):
        bits = np.asarray(bits, dtype=int)
        assert np.array_equal(rz_decode(rz_encode(bits)), bits)

    @given(bits=bit_lists)
    def test_two_chips_per_bit_returning_to_zero(self, bits):
        chips = rz_encode(bits)
        assert chips.size == 2 * len(bits)
        assert np.all(chips[1::2] == 0)  # the line always returns to idle
        assert chips.sum() == int(np.sum(bits))

    @given(bits=bit_lists.filter(bool))
    def test_trailing_partial_chip_dropped(self, bits):
        chips = rz_encode(bits)
        # A deletion chopping the stream mid-pair loses at most the
        # final bit, never corrupts the prefix.
        truncated = rz_decode(chips[:-1])
        assert np.array_equal(truncated, np.asarray(bits[:-1], dtype=int))


class TestHammingSingleErrorCorrection:
    def test_corrects_every_single_bit_flip_exhaustively(self):
        # All 16 data words x all 7 flip positions: the full claim,
        # small enough to enumerate outright.
        for word in range(16):
            data = np.array([(word >> k) & 1 for k in range(4)])
            code = hamming_encode(data)
            for pos in range(7):
                corrupted = code.copy()
                corrupted[pos] ^= 1
                decoded, corrected = hamming_decode(corrupted)
                assert np.array_equal(decoded, data), (word, pos)
                assert corrected == 1

    def test_clean_codewords_decode_untouched(self):
        for word in range(16):
            data = np.array([(word >> k) & 1 for k in range(4)])
            decoded, corrected = hamming_decode(hamming_encode(data))
            assert np.array_equal(decoded, data)
            assert corrected == 0

    @given(
        data=st.lists(st.integers(0, 1), min_size=4, max_size=64),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60)
    def test_one_flip_per_codeword_stream(self, data, seed):
        code = hamming_encode(data)
        n_blocks = code.size // 7
        rng = np.random.default_rng(seed)
        corrupted = code.copy()
        flips = 0
        for b in range(n_blocks):
            if rng.random() < 0.7:  # most blocks take one hit
                corrupted[b * 7 + rng.integers(7)] ^= 1
                flips += 1
        decoded, corrected = hamming_decode(corrupted)
        # encode() zero-pads to a multiple of 4; the payload prefix
        # must come back exact and every flip must be accounted for.
        assert np.array_equal(decoded[: len(data)], np.asarray(data, dtype=int))
        assert corrected == flips
