"""Tests for framing and preamble synchronisation."""

import numpy as np
import pytest

from repro.core.sync import (
    DEFAULT_PREAMBLE,
    FrameFormat,
    locate_preamble,
    strip_header,
)


class TestFrameFormat:
    def test_header_layout(self):
        fmt = FrameFormat(training_bits=8, zero_run=4)
        header = fmt.header
        assert header[:8].tolist() == [1, 0, 1, 0, 1, 0, 1, 0]
        assert header[8:12].tolist() == [0, 0, 0, 0]
        assert np.array_equal(header[12:], fmt.preamble)

    def test_frame_appends_payload(self):
        fmt = FrameFormat()
        payload = np.array([1, 1, 0])
        frame = fmt.frame(payload)
        assert np.array_equal(frame[-3:], payload)
        assert frame.size == fmt.header.size + 3

    def test_rejects_tiny_training(self):
        with pytest.raises(ValueError):
            FrameFormat(training_bits=1)


class TestLocatePreamble:
    def test_exact_match(self):
        bits = np.concatenate([np.zeros(10, dtype=int), DEFAULT_PREAMBLE, [1, 1]])
        pos = locate_preamble(bits, DEFAULT_PREAMBLE)
        assert pos == 10 + DEFAULT_PREAMBLE.size

    def test_tolerates_bit_errors(self):
        noisy = DEFAULT_PREAMBLE.copy()
        noisy[4] ^= 1
        bits = np.concatenate([np.zeros(7, dtype=int), noisy, [0, 1]])
        pos = locate_preamble(bits, DEFAULT_PREAMBLE, max_errors=2)
        assert pos == 7 + DEFAULT_PREAMBLE.size

    def test_rejects_beyond_error_budget(self):
        noisy = DEFAULT_PREAMBLE.copy()
        noisy[:4] ^= 1
        bits = np.concatenate([np.zeros(7, dtype=int), noisy])
        assert locate_preamble(bits, DEFAULT_PREAMBLE, max_errors=1) is None

    def test_stream_shorter_than_preamble(self):
        assert locate_preamble(np.array([1, 0]), DEFAULT_PREAMBLE) is None

    def test_search_from_skips_early_matches(self):
        bits = np.concatenate(
            [DEFAULT_PREAMBLE, np.zeros(5, dtype=int), DEFAULT_PREAMBLE]
        )
        pos = locate_preamble(bits, DEFAULT_PREAMBLE, search_from=3)
        assert pos == bits.size


class TestStripHeader:
    def test_clean_roundtrip(self):
        fmt = FrameFormat()
        payload = np.random.default_rng(0).integers(0, 2, size=40)
        recovered = strip_header(fmt.frame(payload), fmt)
        assert np.array_equal(recovered, payload)

    def test_survives_header_bit_errors(self):
        fmt = FrameFormat()
        payload = np.array([1, 0, 1, 1, 0, 0, 1])
        frame = fmt.frame(payload)
        frame[2] ^= 1  # training-sequence error
        frame[fmt.header.size - 3] ^= 1  # preamble error
        recovered = strip_header(frame, fmt)
        assert np.array_equal(recovered, payload)

    def test_survives_deleted_header_bit(self):
        fmt = FrameFormat()
        payload = np.random.default_rng(1).integers(0, 2, size=30)
        frame = np.delete(fmt.frame(payload), 5)
        recovered = strip_header(frame, fmt)
        assert recovered is not None
        assert np.array_equal(recovered, payload)

    def test_no_preamble_returns_none(self):
        fmt = FrameFormat()
        assert strip_header(np.zeros(100, dtype=int), fmt) is None
