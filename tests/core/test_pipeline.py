"""Tests for the top-level receive() API."""

import numpy as np
import pytest

from repro.core.pipeline import receive
from repro.covert.link import CovertLink
from repro.core.coding import bytes_to_bits
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


@pytest.fixture(scope="module")
def ecc_link_capture():
    link = CovertLink(
        machine=DELL_INSPIRON, profile=TINY, seed=21, use_ecc=True
    )
    payload = bytes_to_bits(b"top secret")
    result = link.run(payload)
    return link, payload, result


class TestReceive:
    def test_full_payload_recovery(self, ecc_link_capture):
        link, payload, result = ecc_link_capture
        rx = receive(
            result.capture,
            link.vrm_frequency_hz,
            expected_bit_period_s=link.transmitter(
                np.random.default_rng(0)
            ).nominal_bit_duration_s(),
        )
        assert rx.synchronized
        assert rx.payload_bytes[: len(b"top secret")] == b"top secret"

    def test_without_period_hint(self, ecc_link_capture):
        link, payload, result = ecc_link_capture
        rx = receive(result.capture, link.vrm_frequency_hz)
        assert rx.synchronized
        recovered = rx.payload_bits[: payload.size]
        errors = np.count_nonzero(recovered != payload[: recovered.size])
        assert errors <= 2

    def test_unsynchronised_on_noise(self):
        from repro.types import IQCapture

        rng = np.random.default_rng(0)
        noise = (
            rng.standard_normal(40000) + 1j * rng.standard_normal(40000)
        ).astype(np.complex64)
        capture = IQCapture(noise, 24000.0, 14550.0)
        rx = receive(capture, 9700.0, expected_bit_period_s=0.03)
        assert not rx.synchronized or rx.payload_bits.size < 8

    def test_ecc_disabled_returns_raw_payload(self, ecc_link_capture):
        link, payload, result = ecc_link_capture
        rx = receive(
            result.capture,
            link.vrm_frequency_hz,
            expected_bit_period_s=link.transmitter(
                np.random.default_rng(0)
            ).nominal_bit_duration_s(),
            use_ecc=False,
        )
        # Without decoding, the payload is the Hamming-coded stream
        # (7/4 expansion of the original, zero-padded).
        assert rx.payload_bits.size >= payload.size * 7 // 4
