"""Tests for edge detection."""

import numpy as np
import pytest

from repro.core.acquisition import Envelope
from repro.core.edges import (
    EdgeConfig,
    coarse_symbol_frames,
    detect_bit_starts,
    edge_response,
)


def square_envelope(period=40, n_periods=20, duty=0.5, noise=0.02, seed=0):
    """A clean RZ-style envelope with known rising edges."""
    rng = np.random.default_rng(seed)
    n = period * n_periods
    y = np.zeros(n)
    for k in range(n_periods):
        y[k * period : k * period + int(period * duty)] = 1.0
    y += noise * rng.standard_normal(n)
    return Envelope(samples=y, frame_rate=1000.0, times=np.arange(n) / 1000.0)


class TestEdgeResponse:
    def test_positive_peak_at_rising_edge(self):
        env = square_envelope()
        response = edge_response(env, 20)
        peak = np.argmax(response[10:100]) + 10
        assert abs(peak - (40 + 10)) <= 12  # near a known edge region

    def test_output_length_matches_input(self):
        env = square_envelope()
        assert edge_response(env, 20).size == env.samples.size


class TestDetectBitStarts:
    def test_finds_all_edges(self):
        env = square_envelope(n_periods=20)
        starts = detect_bit_starts(env, expected_symbol_frames=40)
        assert starts.size == pytest.approx(20, abs=1)

    def test_consistent_spacing(self):
        env = square_envelope()
        starts = detect_bit_starts(env, 40)
        spacing = np.diff(starts)
        assert np.median(spacing) == pytest.approx(40, abs=1)

    def test_prominence_rejects_noise_wiggles(self):
        env = square_envelope(noise=0.15, seed=3)
        starts = detect_bit_starts(env, 40)
        # Noise must not flood the detection with spurious edges.
        assert starts.size <= 24

    def test_flat_envelope_gives_nothing(self):
        env = Envelope(np.zeros(500), 1000.0, np.arange(500) / 1000.0)
        assert detect_bit_starts(env, 40).size == 0

    def test_rejects_bad_period(self):
        env = square_envelope()
        with pytest.raises(ValueError):
            detect_bit_starts(env, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EdgeConfig(kernel_fraction=0)
        with pytest.raises(ValueError):
            EdgeConfig(min_separation_fraction=2.0)


class TestCoarsePeriod:
    def test_recovers_period_of_alternating_signal(self):
        env = square_envelope(period=40, n_periods=30)
        estimate = coarse_symbol_frames(env, max_lag_frames=200)
        assert estimate == pytest.approx(40, abs=2)

    def test_too_short_raises(self):
        env = Envelope(np.zeros(2), 1000.0, np.zeros(2))
        with pytest.raises(ValueError):
            coarse_symbol_frames(env, 10)
