"""Tests for the batch decoder on the shared end-to-end capture."""

import numpy as np
import pytest

from repro.core.align import align_bits
from repro.core.decoder import BatchDecoder, DecoderConfig


class TestDecodeOnRealCapture:
    def test_recovers_most_bits(self, link_result):
        m = link_result.metrics
        assert m.ber < 0.02
        assert m.insertion_probability < 0.02
        assert m.deletion_probability < 0.03

    def test_period_estimate_close_to_nominal(self, link_result):
        d = link_result.decode
        nominal_frames = (
            link_result.tx_bits.size
            and link_result.activity.duration
            / link_result.tx_bits.size
            * d.envelope.frame_rate
        )
        assert d.period_frames == pytest.approx(nominal_frames, rel=0.15)

    def test_symbol_rate_property(self, link_result):
        d = link_result.decode
        assert d.symbol_rate_hz == pytest.approx(
            d.envelope.frame_rate / d.period_frames
        )

    def test_thresholds_strictly_inside_power_range(self, link_result):
        d = link_result.decode
        for thr in d.thresholds:
            assert d.powers.min() < thr < d.powers.max()

    def test_powers_align_with_starts(self, link_result):
        d = link_result.decode
        assert d.powers.size == d.starts.size == d.bits.size


class TestDecoderConfiguration:
    def test_decode_envelope_without_expected_period(self, link_result):
        # Bootstrap from autocorrelation: should still decode most bits.
        decoder = BatchDecoder(vrm_frequency_hz=9.7e3)
        result = decoder.decode_envelope(link_result.decode.envelope)
        m = align_bits(link_result.tx_bits, result.bits)
        assert m.ber < 0.1

    def test_empty_starts_path(self):
        from repro.core.acquisition import Envelope

        decoder = BatchDecoder(vrm_frequency_hz=1e6, expected_bit_period_s=1e-3)
        env = Envelope(np.zeros(4000), 1000.0, np.arange(4000) / 1000.0)
        result = decoder.decode_envelope(env)
        assert result.bits.size == 0

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            BatchDecoder(vrm_frequency_hz=0.0)

    def test_rejects_tiny_batches(self):
        with pytest.raises(ValueError):
            DecoderConfig(batch_bits=2)

    def test_default_acquisition_is_quarter_bit_window(self):
        config = DecoderConfig()
        assert config.acquisition.fft_size == 256
