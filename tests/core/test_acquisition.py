"""Tests for Eq. 1 acquisition."""

import numpy as np
import pytest

from repro.core.acquisition import (
    AcquisitionConfig,
    acquire,
    harmonic_bins,
)
from repro.dsp.stft import stft
from repro.types import IQCapture


def ook_capture(f0=5e3, fs=96e3, center=None, duration=0.5, depth=0.0):
    """Synthetic OOK capture: carrier + harmonic keyed on/off at 10 Hz."""
    center = center if center is not None else 1.5 * f0
    n = int(duration * fs)
    t = np.arange(n) / fs
    key = (np.floor(t * 10) % 2).astype(float)
    key = np.maximum(key, depth)
    wave = key * (
        np.exp(2j * np.pi * (f0 - center) * t)
        + 0.6 * np.exp(2j * np.pi * (2 * f0 - center) * t)
    )
    wave = wave + 0.01 * (
        np.random.default_rng(0).standard_normal(n)
        + 1j * np.random.default_rng(1).standard_normal(n)
    )
    return IQCapture(wave.astype(np.complex64), fs, center)


class TestHarmonicBins:
    def test_selects_fundamental_and_harmonic(self):
        cap = ook_capture()
        config = AcquisitionConfig(fft_size=256, hop=64, bin_halfwidth=0)
        spec = stft(cap.samples, cap.sample_rate, 256, 64)
        bins = harmonic_bins(spec, cap, 5e3, config)
        freqs = spec.frequencies[bins]
        assert np.any(np.abs(freqs - (-2.5e3)) < 400)
        assert np.any(np.abs(freqs - (+2.5e3)) < 400)

    def test_out_of_band_harmonics_skipped(self):
        cap = ook_capture()
        config = AcquisitionConfig(
            fft_size=256, hop=64, harmonics=(1, 2, 30), bin_halfwidth=0
        )
        spec = stft(cap.samples, cap.sample_rate, 256, 64)
        bins = harmonic_bins(spec, cap, 5e3, config)
        assert bins.size >= 2  # fundamental + first harmonic survive

    def test_all_out_of_band_raises(self):
        cap = ook_capture()
        config = AcquisitionConfig(fft_size=256, hop=64, harmonics=(40,))
        spec = stft(cap.samples, cap.sample_rate, 256, 64)
        with pytest.raises(ValueError, match="bandwidth"):
            harmonic_bins(spec, cap, 5e3, config)

    def test_halfwidth_widens_selection(self):
        cap = ook_capture()
        spec = stft(cap.samples, cap.sample_rate, 256, 64)
        narrow = harmonic_bins(
            spec, cap, 5e3, AcquisitionConfig(256, 64, bin_halfwidth=0)
        )
        wide = harmonic_bins(
            spec, cap, 5e3, AcquisitionConfig(256, 64, bin_halfwidth=2)
        )
        assert wide.size > narrow.size


class TestAcquire:
    def test_envelope_tracks_keying(self):
        cap = ook_capture()
        env = acquire(cap, 5e3, AcquisitionConfig(fft_size=256, hop=64))
        hi = np.percentile(env.samples, 90)
        lo = np.percentile(env.samples, 10)
        assert hi > 5 * lo

    def test_envelope_flat_without_keying(self):
        cap = ook_capture(depth=1.0)  # carrier always on
        env = acquire(cap, 5e3, AcquisitionConfig(fft_size=256, hop=64))
        hi = np.percentile(env.samples, 90)
        lo = np.percentile(env.samples, 10)
        assert hi < 1.5 * lo

    def test_harmonic_sum_raises_separation(self):
        cap = ook_capture()
        only_f0 = acquire(
            cap, 5e3, AcquisitionConfig(fft_size=256, hop=64, harmonics=(1,))
        )
        both = acquire(
            cap, 5e3, AcquisitionConfig(fft_size=256, hop=64, harmonics=(1, 2))
        )
        # Eq. 1's point: summing components increases the 0/1 magnitude
        # difference (in absolute terms).
        sep_f0 = np.percentile(only_f0.samples, 90) - np.percentile(
            only_f0.samples, 10
        )
        sep_both = np.percentile(both.samples, 90) - np.percentile(
            both.samples, 10
        )
        assert sep_both > sep_f0

    def test_frame_rate_and_times(self):
        cap = ook_capture()
        env = acquire(cap, 5e3, AcquisitionConfig(fft_size=256, hop=64))
        assert env.frame_rate == pytest.approx(cap.sample_rate / 64)
        assert env.times.size == env.samples.size

    def test_slice_seconds(self):
        cap = ook_capture()
        env = acquire(cap, 5e3, AcquisitionConfig(fft_size=256, hop=64))
        part = env.slice_seconds(0.1, 0.2)
        assert part.duration == pytest.approx(0.1, rel=0.1)

    def test_rejects_bad_frequency(self):
        cap = ook_capture()
        with pytest.raises(ValueError):
            acquire(cap, -5e3)


class TestConfigValidation:
    def test_rejects_empty_harmonics(self):
        with pytest.raises(ValueError):
            AcquisitionConfig(harmonics=())

    def test_rejects_zero_harmonic(self):
        with pytest.raises(ValueError):
            AcquisitionConfig(harmonics=(0, 1))

    def test_rejects_negative_halfwidth(self):
        with pytest.raises(ValueError):
            AcquisitionConfig(bin_halfwidth=-1)
