"""Tests for the Section VI countermeasure models."""

import numpy as np
import pytest

from repro.countermeasures import VrmDithering, shielded_scenario
from repro.covert.link import CovertLink
from repro.em.environment import near_field_scenario
from repro.params import TINY
from repro.types import BurstTrain


def periodic_train(f0=1e5, duration=0.02):
    period = 1.0 / f0
    times = np.arange(period, duration, period)
    return BurstTrain(
        times, np.full(times.size, 1e-5), np.full(times.size, 1.1),
        duration, period,
    )


class TestVrmDithering:
    def test_preserves_burst_count(self):
        train = periodic_train()
        out = VrmDithering(spread_rel=0.05).apply(
            train, np.random.default_rng(0)
        )
        assert out.count == train.count

    def test_times_stay_sorted_and_nonnegative(self):
        out = VrmDithering(spread_rel=0.2).apply(
            periodic_train(), np.random.default_rng(1)
        )
        assert np.all(np.diff(out.times) >= -1e-12)
        assert np.all(out.times >= 0)

    def test_spreads_the_spectral_line(self):
        from repro.vrm.emission import EmissionModel

        f0, fs = 1e5, 8e5
        train = periodic_train(f0=f0, duration=0.1)
        clean = EmissionModel().synthesize(train, fs)
        dithered_train = VrmDithering(spread_rel=0.05, coherence_s=100e-6).apply(
            train, np.random.default_rng(2)
        )
        dithered = EmissionModel().synthesize(dithered_train, fs)[: clean.size]

        def line_mag(wave):
            spectrum = np.abs(np.fft.rfft(wave))
            freqs = np.fft.rfftfreq(wave.size, 1 / fs)
            return spectrum[np.argmin(np.abs(freqs - f0))]

        assert line_mag(dithered) < 0.5 * line_mag(clean)

    def test_empty_train_passthrough(self):
        empty = BurstTrain(np.empty(0), np.empty(0), np.empty(0), 1.0, 1e-5)
        out = VrmDithering().apply(empty, np.random.default_rng(0))
        assert out.count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            VrmDithering(spread_rel=0.0)
        with pytest.raises(ValueError):
            VrmDithering(coherence_s=-1.0)


class TestShielding:
    def test_reduces_link_gain(self):
        scen = near_field_scenario(1.5e6)
        shielded = shielded_scenario(scen, 20.0)
        assert shielded.link_gain() == pytest.approx(
            scen.link_gain() / 10.0, rel=0.01
        )

    def test_name_records_shield(self):
        scen = shielded_scenario(near_field_scenario(1.5e6), 30.0)
        assert "shield30dB" in scen.name

    def test_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            shielded_scenario(near_field_scenario(1.5e6), -5.0)


class TestEndToEndEffect:
    def test_dithering_degrades_the_channel(self):
        payload = np.random.default_rng(0).integers(0, 2, size=80)
        base = CovertLink(profile=TINY, seed=6).run(payload)
        dithered = CovertLink(
            profile=TINY, seed=6, vrm_dithering=VrmDithering(spread_rel=0.05)
        ).run(payload)
        base_total = (
            base.metrics.ber
            + base.metrics.insertion_probability
            + base.metrics.deletion_probability
        )
        dith_total = (
            dithered.metrics.ber
            + dithered.metrics.insertion_probability
            + dithered.metrics.deletion_probability
        )
        assert dith_total > base_total + 0.1
