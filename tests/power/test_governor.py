"""Tests for the DVFS governors."""

import pytest

from repro.power.governor import OndemandGovernor, SpeedShiftGovernor
from repro.power.states import default_table


@pytest.fixture
def table():
    return default_table()


class TestSpeedShift:
    def test_starts_at_lowest(self, table):
        gov = SpeedShiftGovernor(table)
        assert gov.current_p_state == len(table.p_states) - 1

    def test_ramps_toward_p0_under_full_load(self, table):
        gov = SpeedShiftGovernor(table, step_interval_s=1e-6)
        schedule = gov.on_active(0.0, 1.0, level=1.0)
        assert schedule[0] == (0.0, len(table.p_states) - 1)
        assert schedule[-1][1] == 0
        # One state per step, monotone toward P0.
        indices = [p for _, p in schedule]
        assert indices == sorted(indices, reverse=True)

    def test_short_interval_truncates_ramp(self, table):
        gov = SpeedShiftGovernor(table, step_interval_s=10e-6)
        schedule = gov.on_active(0.0, 25e-6, level=1.0)
        assert schedule[-1][1] > 0  # did not reach P0

    def test_holds_p_state_over_short_idle(self, table):
        gov = SpeedShiftGovernor(table, step_interval_s=1e-6, hold_s=1e-3)
        gov.on_active(0.0, 1.0, level=1.0)
        assert gov.on_idle(1.0, 1.0005) == 0  # held at P0

    def test_parks_after_long_idle(self, table):
        gov = SpeedShiftGovernor(table, step_interval_s=1e-6, hold_s=1e-3)
        gov.on_active(0.0, 1.0, level=1.0)
        assert gov.on_idle(1.0, 1.1) == len(table.p_states) - 1

    def test_light_load_targets_mid_table(self, table):
        gov = SpeedShiftGovernor(table, step_interval_s=1e-6)
        schedule = gov.on_active(0.0, 1.0, level=0.5)
        assert schedule[-1][1] == (len(table.p_states) - 1) // 2

    def test_rejects_bad_step_interval(self, table):
        with pytest.raises(ValueError):
            SpeedShiftGovernor(table, step_interval_s=0)


class TestOndemand:
    def test_no_change_between_samples(self, table):
        gov = OndemandGovernor(table, sampling_s=10e-3)
        schedule = gov.on_active(0.0, 5e-3, level=1.0)
        assert len(schedule) == 1  # still inside the first sample window

    def test_jumps_to_p0_when_busy(self, table):
        gov = OndemandGovernor(table, sampling_s=10e-3, up_threshold=0.8)
        schedule = gov.on_active(0.0, 30e-3, level=1.0)
        assert schedule[-1][1] == 0

    def test_drops_to_lowest_on_idle_sample(self, table):
        gov = OndemandGovernor(table, sampling_s=10e-3)
        gov.on_active(0.0, 30e-3, level=1.0)
        assert gov.current_p_state == 0
        parked = gov.on_idle(30e-3, 60e-3)
        assert parked == len(table.p_states) - 1

    def test_partial_util_steps_down_one(self, table):
        gov = OndemandGovernor(table, sampling_s=10e-3, up_threshold=0.8)
        gov.on_active(0.0, 30e-3, level=1.0)  # reach P0
        gov.on_active(30e-3, 50e-3, level=0.5)  # 50% util: step down
        assert 0 < gov.current_p_state < len(table.p_states) - 1

    def test_reset_restores_cold_state(self, table):
        gov = OndemandGovernor(table)
        gov.on_active(0.0, 30e-3, level=1.0)
        gov.reset()
        assert gov.current_p_state == len(table.p_states) - 1

    def test_rejects_bad_sampling(self, table):
        with pytest.raises(ValueError):
            OndemandGovernor(table, sampling_s=-1.0)
