"""Tests for the PMU: activity traces to power-state residencies."""

import numpy as np
import pytest

from repro.power.idle import MenuIdleGovernor
from repro.power.pmu import PMU
from repro.power.states import default_table
from repro.types import ActivityTrace, Interval


def make_pmu(table=None):
    table = table if table is not None else default_table()
    return PMU(
        table,
        idle_governor=MenuIdleGovernor(table, prediction_noise=0.0),
        rng=np.random.default_rng(0),
    )


def residency_covering(trace, t):
    for r in trace.residencies:
        if r.start <= t < r.end:
            return r
    raise AssertionError(f"no residency covers t={t}")


class TestCoverage:
    def test_residencies_tile_the_duration(self):
        pmu = make_pmu()
        trace = ActivityTrace([Interval(0.001, 0.002), Interval(0.004, 0.005)], 0.01)
        result = pmu.run(trace)
        cursor = 0.0
        for r in result.residencies:
            assert r.start == pytest.approx(cursor, abs=1e-12)
            assert r.end > r.start
            cursor = r.end
        assert cursor == pytest.approx(0.01)

    def test_active_intervals_are_c0(self):
        pmu = make_pmu()
        trace = ActivityTrace([Interval(0.001, 0.002)], 0.004)
        result = pmu.run(trace)
        assert residency_covering(result, 0.0015).c_state == 0

    def test_long_idle_reaches_deep_state(self):
        pmu = make_pmu()
        trace = ActivityTrace([Interval(0.0, 0.001)], 0.101)
        result = pmu.run(trace)
        deep = pmu.table.deepest_c_state.index
        assert residency_covering(result, 0.05).c_state == deep

    def test_idle_entry_transition_is_shallow(self):
        pmu = make_pmu()
        trace = ActivityTrace([Interval(0.0, 0.001)], 0.101)
        result = pmu.run(trace)
        entry = pmu.table.deepest_c_state.entry_latency_s
        assert residency_covering(result, 0.001 + entry / 2).c_state == 1

    def test_fully_idle_trace(self):
        pmu = make_pmu()
        result = pmu.run(ActivityTrace([], 0.05))
        assert result.residencies
        assert all(r.c_state > 0 for r in result.residencies)


class TestBiosRestrictions:
    def test_c_disabled_idle_stays_c0(self):
        table = default_table().restrict(allow_c=False)
        pmu = make_pmu(table)
        result = pmu.run(ActivityTrace([], 0.05))
        assert all(r.c_state == 0 for r in result.residencies)

    def test_p_disabled_always_p0(self):
        table = default_table().restrict(allow_p=False)
        pmu = make_pmu(table)
        trace = ActivityTrace([Interval(0.0, 0.01)], 0.02)
        result = pmu.run(trace)
        assert all(r.p_state == 0 for r in result.residencies)

    def test_both_disabled_draws_constant_current(self):
        table = default_table().restrict(allow_c=False, allow_p=False)
        pmu = make_pmu(table)
        trace = ActivityTrace([Interval(0.0, 0.01)], 0.02)
        result = pmu.run(trace)
        load = result.current_draw(table.current_a)
        samples = load.at(np.linspace(0.001, 0.019, 10))
        assert np.ptp(samples) == pytest.approx(0.0)


class TestModulation:
    def test_active_draws_more_than_idle(self):
        pmu = make_pmu()
        trace = ActivityTrace([Interval(0.0, 0.005)], 0.02)
        result = pmu.run(trace)
        load = result.current_draw(pmu.table.current_a)
        active = load.at(np.array([0.004]))[0]
        idle = load.at(np.array([0.015]))[0]
        assert active > 10 * idle
