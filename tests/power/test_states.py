"""Tests for P/C-state tables."""

import pytest

from repro.power.states import CState, PState, PowerStateTable, default_table


class TestValidation:
    def test_p_states_must_be_contiguous(self):
        p0 = PState(0, 3e9, 1.1, 10.0)
        p2 = PState(2, 2e9, 0.9, 6.0)
        c0 = CState(0, 10.0, 0, 0, 0)
        with pytest.raises(ValueError, match="contiguous"):
            PowerStateTable((p0, p2), (c0,))

    def test_c_states_must_start_at_c0(self):
        p0 = PState(0, 3e9, 1.1, 10.0)
        c1 = CState(1, 1.0, 1e-6, 1e-6, 1e-6)
        with pytest.raises(ValueError, match="start at C0"):
            PowerStateTable((p0,), (c1,))

    def test_c_states_must_increase(self):
        p0 = PState(0, 3e9, 1.1, 10.0)
        c0 = CState(0, 10.0, 0, 0, 0)
        c6 = CState(6, 0.1, 1e-6, 1e-6, 1e-6)
        c3 = CState(3, 0.5, 1e-6, 1e-6, 1e-6)
        with pytest.raises(ValueError, match="increasing"):
            PowerStateTable((p0,), (c0, c6, c3))

    def test_pstate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PState(0, -1.0, 1.1, 1.0)
        with pytest.raises(ValueError):
            PState(-1, 1e9, 1.1, 1.0)


class TestDefaultTable:
    def test_p0_is_fastest_and_hungriest(self):
        table = default_table()
        freqs = [p.frequency_hz for p in table.p_states]
        currents = [p.active_current_a for p in table.p_states]
        assert freqs == sorted(freqs, reverse=True)
        assert currents == sorted(currents, reverse=True)

    def test_deeper_c_states_draw_less(self):
        table = default_table()
        idle_currents = [c.idle_current_a for c in table.c_states[1:]]
        assert idle_currents == sorted(idle_currents, reverse=True)

    def test_deeper_c_states_wake_slower(self):
        table = default_table()
        latencies = [c.exit_latency_s for c in table.c_states]
        assert latencies == sorted(latencies)

    def test_current_in_c0_is_p_state_current(self):
        table = default_table()
        assert table.current_a(0, 0) == table.p_state(0).active_current_a

    def test_current_in_idle_is_c_state_current(self):
        table = default_table()
        deep = table.deepest_c_state
        assert table.current_a(0, deep.index) == deep.idle_current_a

    def test_voltage_gating_drops_rail(self):
        table = default_table()
        deep = table.deepest_c_state
        assert deep.gates_voltage
        assert table.voltage_v(0, deep.index) < table.voltage_v(0, 0)

    def test_clock_gated_states_keep_voltage(self):
        table = default_table()
        assert table.voltage_v(0, 1) == table.voltage_v(0, 0)

    def test_unknown_c_state_raises(self):
        with pytest.raises(KeyError):
            default_table().c_state(4)


class TestRestrict:
    def test_disable_c_states_leaves_only_c0(self):
        table = default_table().restrict(allow_c=False)
        assert [c.index for c in table.c_states] == [0]
        assert len(table.p_states) > 1

    def test_disable_p_states_pins_p0(self):
        table = default_table().restrict(allow_p=False)
        assert len(table.p_states) == 1
        assert table.p_states[0].index == 0

    def test_disable_both(self):
        table = default_table().restrict(allow_c=False, allow_p=False)
        assert len(table.p_states) == 1
        assert len(table.c_states) == 1
