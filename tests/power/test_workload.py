"""Tests for workload generators."""

import numpy as np
import pytest

from repro.power.workload import (
    alternating_workload,
    burst_workload,
    constant_workload,
    idle_workload,
)


class TestSimpleWorkloads:
    def test_idle_is_empty(self):
        trace = idle_workload(1.0)
        assert trace.intervals == []
        assert trace.duration == 1.0

    def test_constant_covers_duration(self):
        trace = constant_workload(2.0, level=0.5)
        assert len(trace.intervals) == 1
        assert trace.busy_time == pytest.approx(1.0)

    def test_constant_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            constant_workload(0.0)


class TestAlternating:
    def test_exact_periods_without_jitter(self):
        trace = alternating_workload(1.0, 0.1, 0.1)
        starts = [iv.start for iv in trace.intervals]
        assert starts == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8])
        assert all(iv.duration == pytest.approx(0.1) for iv in trace.intervals)

    def test_duty_cycle_controls_busy_fraction(self):
        trace = alternating_workload(10.0, 0.1, 0.3)
        assert trace.busy_time / trace.duration == pytest.approx(0.25, rel=0.05)

    def test_jitter_varies_periods(self):
        trace = alternating_workload(
            1.0, 0.05, 0.05, jitter=0.3, rng=np.random.default_rng(3)
        )
        durations = {round(iv.duration, 6) for iv in trace.intervals}
        assert len(durations) > 1

    def test_rejects_nonpositive_periods(self):
        with pytest.raises(ValueError):
            alternating_workload(1.0, 0.0, 0.1)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            alternating_workload(1.0, 0.1, 0.1, jitter=-1)


class TestBursts:
    def test_bursts_at_given_times(self):
        trace = burst_workload(1.0, [0.1, 0.5], 0.02)
        assert [iv.start for iv in trace.intervals] == pytest.approx([0.1, 0.5])

    def test_overlapping_bursts_merge(self):
        trace = burst_workload(1.0, [0.1, 0.11], 0.05)
        assert len(trace.intervals) == 1
        assert trace.intervals[0].end == pytest.approx(0.16)

    def test_bursts_clipped_to_duration(self):
        trace = burst_workload(1.0, [0.99], 0.05)
        assert trace.intervals[-1].end == 1.0

    def test_bursts_outside_duration_dropped(self):
        trace = burst_workload(1.0, [2.0], 0.05)
        assert trace.intervals == []
