"""Tests for the menu-style idle governor."""

import numpy as np
import pytest

from repro.power.idle import MenuIdleGovernor
from repro.power.states import default_table


@pytest.fixture
def governor():
    return MenuIdleGovernor(
        default_table(), prediction_noise=0.0, rng=np.random.default_rng(0)
    )


class TestSelection:
    def test_long_idle_selects_deepest(self, governor):
        chosen = governor.select(1.0)
        assert chosen.index == governor.table.deepest_c_state.index

    def test_very_short_idle_selects_shallowest(self, governor):
        chosen = governor.select(2e-6)
        assert chosen.index == 1

    def test_intermediate_idle_selects_intermediate(self, governor):
        deep = governor.table.deepest_c_state
        chosen = governor.select(deep.target_residency_s * 0.5)
        assert 0 < chosen.index < deep.index

    def test_respects_latency_tolerance(self):
        table = default_table()
        strict = MenuIdleGovernor(
            table, prediction_noise=0.0, latency_tolerance_s=5e-6
        )
        chosen = strict.select(1.0)
        assert chosen.exit_latency_s <= 5e-6

    def test_c0_only_table_returns_c0(self):
        table = default_table().restrict(allow_c=False)
        governor = MenuIdleGovernor(table, prediction_noise=0.0)
        assert governor.select(1.0).index == 0


class TestPrediction:
    def test_zero_noise_predicts_exactly(self, governor):
        assert governor.predict(0.5) == pytest.approx(0.5)

    def test_noise_spreads_predictions(self):
        governor = MenuIdleGovernor(
            default_table(), prediction_noise=0.5, rng=np.random.default_rng(1)
        )
        predictions = {round(governor.predict(1.0), 6) for _ in range(20)}
        assert len(predictions) > 1

    def test_noise_occasionally_changes_selection(self):
        table = default_table()
        governor = MenuIdleGovernor(
            table, prediction_noise=1.0, rng=np.random.default_rng(2)
        )
        deep = table.deepest_c_state
        borderline = deep.target_residency_s
        selections = {governor.select(borderline).index for _ in range(50)}
        assert len(selections) > 1

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            MenuIdleGovernor(default_table(), prediction_noise=-0.1)
