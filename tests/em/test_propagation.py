"""Tests for near-field propagation and wall loss."""

import numpy as np
import pytest

from repro.em.propagation import PathModel, Wall


class TestPathModel:
    def test_unity_gain_at_reference(self):
        path = PathModel(reference_distance_m=0.03)
        assert path.gain(0.03, 1e6) == pytest.approx(1.0)

    def test_near_field_cubic_falloff(self):
        path = PathModel(reference_distance_m=0.03)
        g1 = path.gain(0.1, 1e6)
        g2 = path.gain(0.2, 1e6)
        # Deep in the near field: doubling distance costs 18 dB.
        assert g1 / g2 == pytest.approx(8.0, rel=0.01)

    def test_monotone_decreasing(self):
        path = PathModel()
        gains = [path.gain(d, 1e6) for d in (0.1, 0.5, 1.0, 2.5, 10.0)]
        assert gains == sorted(gains, reverse=True)

    def test_gain_db_negative_past_reference(self):
        path = PathModel()
        assert path.gain_db(1.0, 1e6) < 0

    def test_far_field_relaxes_toward_1_over_r(self):
        # Far beyond the radian distance the extra loss per doubling
        # approaches 6 dB rather than 18 dB.
        path = PathModel()
        f = 1e6
        radian = 3e8 / (2 * np.pi * f)
        near_ratio = path.gain(0.1, f) / path.gain(0.2, f)
        far_ratio = path.gain(20 * radian, f) / path.gain(40 * radian, f)
        assert far_ratio < near_ratio / 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            PathModel().gain(0.0, 1e6)
        with pytest.raises(ValueError):
            PathModel().gain(1.0, -1e6)


class TestWall:
    def test_loss_at_reference_frequency(self):
        wall = Wall(loss_db_at_1mhz=12.5)
        assert wall.loss_db(1e6) == pytest.approx(12.5)

    def test_loss_grows_with_frequency(self):
        wall = Wall()
        assert wall.loss_db(4e6) == pytest.approx(2 * wall.loss_db(1e6))

    def test_wall_reduces_path_gain(self):
        path = PathModel()
        assert path.gain(1.0, 1e6, Wall()) < path.gain(1.0, 1e6)

    def test_wall_loss_matches_db_budget(self):
        path = PathModel()
        wall = Wall(loss_db_at_1mhz=12.5)
        delta_db = path.gain_db(1.0, 1e6, wall) - path.gain_db(1.0, 1e6)
        assert delta_db == pytest.approx(-12.5, abs=0.01)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            Wall().loss_db(0.0)
