"""Tests for antenna models."""

import numpy as np
import pytest

from repro.em.antenna import LoopAntenna, aor_la390, coil_probe


class TestCoilProbe:
    def test_paper_geometry(self):
        probe = coil_probe()
        assert probe.turns == 33
        assert probe.radius_m == pytest.approx(0.005)

    def test_unity_normalisation_at_1mhz(self):
        probe = coil_probe()
        assert probe.gain(1e6) == pytest.approx(
            probe.orientation_efficiency, rel=1e-9
        )


class TestLoopAntenna:
    def test_paper_loop_geometry(self):
        loop = aor_la390()
        assert loop.radius_m == pytest.approx(0.30)
        assert loop.amplifier_db == pytest.approx(20.0)

    def test_loop_beats_probe_by_area_and_amp(self):
        probe, loop = coil_probe(), aor_la390()
        advantage_db = 20 * np.log10(loop.gain(1e6) / probe.gain(1e6))
        # ~40 dB turns-area advantage + 20 dB LNA.
        assert 55 < advantage_db < 65

    def test_faraday_gain_scales_with_frequency(self):
        loop = aor_la390()
        assert loop.gain(2e6) == pytest.approx(2 * loop.gain(1e6))

    def test_effective_area(self):
        ant = LoopAntenna("x", turns=10, radius_m=0.1)
        assert ant.effective_area_m2 == pytest.approx(10 * np.pi * 0.01)

    def test_orientation_efficiency_applies(self):
        aligned = LoopAntenna("a", 1, 0.1, orientation_efficiency=1.0)
        skewed = LoopAntenna("b", 1, 0.1, orientation_efficiency=0.5)
        assert skewed.gain(1e6) == pytest.approx(aligned.gain(1e6) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopAntenna("x", turns=0, radius_m=0.1)
        with pytest.raises(ValueError):
            LoopAntenna("x", turns=1, radius_m=-0.1)
        with pytest.raises(ValueError):
            LoopAntenna("x", turns=1, radius_m=0.1, orientation_efficiency=0.0)
        with pytest.raises(ValueError):
            LoopAntenna("x", 1, 0.1).gain(0.0)
