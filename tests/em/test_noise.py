"""Tests for noise and interference sources."""

import numpy as np
import pytest

from repro.em.noise import (
    ImpulsiveNoise,
    NoiseEnvironment,
    ToneInterferer,
    office_with_appliances,
    quiet_lab,
)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


class TestAwgn:
    def test_amplitude_sets_rms(self, rng):
        env = NoiseEnvironment(awgn_amplitude=0.5)
        noise = env.render(50000, 1e6, rng)
        assert noise.std() == pytest.approx(0.5, rel=0.05)

    def test_empty_request(self, rng):
        assert quiet_lab().render(0, 1e6, rng).size == 0


class TestTones:
    def test_tone_appears_at_frequency(self, rng):
        tone = ToneInterferer(frequency_hz=1e5, amplitude=1.0, drift_rel=0.0)
        wave = tone.render(1 << 14, 1e6, rng)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(wave.size, 1e-6)
        peak_freq = freqs[np.argmax(spectrum)]
        assert peak_freq == pytest.approx(1e5, rel=0.01)

    def test_tone_amplitude(self, rng):
        tone = ToneInterferer(1e5, amplitude=2.0, drift_rel=0.0)
        wave = tone.render(10000, 1e6, rng)
        assert np.abs(wave).max() == pytest.approx(2.0, rel=0.01)

    def test_drift_broadens_line(self, rng):
        def linewidth(drift):
            tone = ToneInterferer(1e5, 1.0, drift_rel=drift)
            wave = tone.render(1 << 15, 1e6, np.random.default_rng(0))
            spectrum = np.abs(np.fft.rfft(wave))
            peak = spectrum.max()
            return int(np.count_nonzero(spectrum > peak / 10))

        assert linewidth(1e-3) > linewidth(0.0)


class TestImpulses:
    def test_events_occur_at_poisson_rate(self, rng):
        imp = ImpulsiveNoise(rate_hz=100.0, amplitude=5.0, duration_s=1e-4)
        wave = imp.render(int(1e6), 1e6, rng)
        # ~100 events of amplitude >> 0 in one second.
        busy = np.count_nonzero(np.abs(wave) > 0.5)
        assert busy > 0

    def test_zero_rate_is_silent(self, rng):
        imp = ImpulsiveNoise(rate_hz=0.0, amplitude=5.0)
        wave = imp.render(10000, 1e6, rng)
        assert np.all(wave == 0)


class TestEnvironments:
    def test_office_is_noisier_than_lab(self, rng):
        lab = quiet_lab(1e-3).render(20000, 1e6, np.random.default_rng(0))
        office = office_with_appliances(1e-3, 0.1, 1.5e5).render(
            20000, 1e6, np.random.default_rng(0)
        )
        assert office.std() > 2 * lab.std()

    def test_office_tones_avoid_exact_band_center(self):
        env = office_with_appliances(1e-3, 0.1, 1.5e5)
        for tone in env.tones:
            assert abs(tone.frequency_hz - 1.5e5) > 0.05 * 1.5e5
