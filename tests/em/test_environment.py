"""Tests for measurement scenarios."""

import numpy as np
import pytest

from repro.em.environment import (
    distance_scenario,
    near_field_scenario,
    through_wall_scenario,
)


class TestScenarioHelpers:
    def test_near_field_uses_coil_probe(self):
        scen = near_field_scenario(1.5e6)
        assert scen.antenna.name == "coil-probe"
        assert scen.distance_m == pytest.approx(0.10)

    def test_distance_uses_loop(self):
        scen = distance_scenario(2.5, 1.5e6)
        assert scen.antenna.name == "AOR-LA390"
        assert scen.wall is None

    def test_wall_scenario_has_wall_and_interferers(self):
        scen = through_wall_scenario(1.5e6)
        assert scen.wall is not None
        assert scen.noise.tones
        assert scen.noise.impulses


class TestPhysicsFrequency:
    def test_defaults_to_band_center(self):
        scen = near_field_scenario(1.5e4)
        assert scen.effective_physics_frequency_hz == 1.5e4

    def test_override_makes_link_profile_invariant(self):
        scaled = distance_scenario(1.0, 1.5e4, physics_frequency_hz=1.5e6)
        paper = distance_scenario(1.0, 1.5e6)
        assert scaled.link_gain() == pytest.approx(paper.link_gain())


class TestLinkBudget:
    def test_gain_falls_with_distance(self):
        gains = [
            distance_scenario(d, 1.5e6).link_gain() for d in (1.0, 1.5, 2.5)
        ]
        assert gains == sorted(gains, reverse=True)

    def test_loop_at_1m_comparable_to_probe_at_10cm(self):
        # The paper's Table III: the big antenna + LNA roughly buys back
        # the extra distance at 1 m.
        probe = near_field_scenario(1.5e6).link_gain()
        loop = distance_scenario(1.0, 1.5e6).link_gain()
        ratio_db = 20 * np.log10(loop / probe)
        assert -8 < ratio_db < 8

    def test_wall_costs_further_gain(self):
        plain = distance_scenario(1.5, 1.5e6).link_gain()
        walled = through_wall_scenario(1.5e6, distance_m=1.5).link_gain()
        assert walled < plain / 2

    def test_apply_scales_and_adds_noise(self):
        scen = near_field_scenario(1.5e6, awgn_amplitude=1e-6)
        rng = np.random.default_rng(0)
        emission = np.ones(1000)
        received = scen.apply(emission, 1e6, rng)
        assert received.mean() == pytest.approx(scen.link_gain(), rel=0.01)

    def test_snr_estimate_monotone_in_amplitude(self):
        scen = distance_scenario(1.0, 1.5e6)
        assert scen.snr_estimate_db(10.0) > scen.snr_estimate_db(1.0)
