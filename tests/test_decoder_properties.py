"""Property-based tests of the batch decoder on synthetic envelopes.

These bypass the analog chain: envelopes are constructed directly with
controlled jitter, so hypothesis can explore bit patterns and timing
regimes far faster than full-chain simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import Envelope
from repro.core.align import align_bits
from repro.core.decoder import BatchDecoder


def synthetic_envelope(
    bits,
    period_frames=24,
    jitter_rel=0.0,
    blip_frames=2,
    high=10.0,
    low=0.3,
    noise=0.05,
    seed=0,
):
    """An RZ-coded envelope like the real chain produces.

    One-bits: high for ~45% of the period.  Zero-bits: a short
    housekeeping blip then low.  Optional per-bit period jitter.
    """
    rng = np.random.default_rng(seed)
    parts = []
    for b in bits:
        period = period_frames
        if jitter_rel:
            period = max(
                int(round(period_frames * (1 + jitter_rel * rng.standard_normal()))),
                6,
            )
        segment = np.full(period, low)
        if b:
            segment[: max(int(period * 0.45), 1)] = high
        else:
            segment[:blip_frames] = high * 0.8
        parts.append(segment)
    y = np.concatenate(parts) + noise * rng.standard_normal(
        sum(p.size for p in parts)
    )
    y = np.abs(y)
    return Envelope(y, 1000.0, np.arange(y.size) / 1000.0)


bit_patterns = st.lists(st.integers(0, 1), min_size=24, max_size=96)


class TestDecoderProperties:
    @settings(deadline=None, max_examples=30)
    @given(bits=bit_patterns)
    def test_clean_envelope_decodes_exactly(self, bits):
        # Guarantee both symbols appear so thresholding is well-posed.
        bits = [1, 0] * 6 + bits
        env = synthetic_envelope(bits)
        decoder = BatchDecoder(1e6, expected_bit_period_s=24 / 1000.0)
        result = decoder.decode_envelope(env)
        m = align_bits(bits, result.bits)
        assert m.ber <= 0.02
        assert m.insertions + m.deletions <= 2

    @settings(deadline=None, max_examples=20)
    @given(
        bits=bit_patterns,
        jitter=st.floats(0.0, 0.12),
    )
    def test_jittered_timing_still_decodes(self, bits, jitter):
        bits = [1, 0] * 6 + bits
        env = synthetic_envelope(bits, jitter_rel=jitter, seed=2)
        decoder = BatchDecoder(1e6, expected_bit_period_s=24 / 1000.0)
        result = decoder.decode_envelope(env)
        m = align_bits(bits, result.bits)
        total = m.ber + m.insertion_probability + m.deletion_probability
        assert total <= 0.15

    @settings(deadline=None, max_examples=20)
    @given(period=st.integers(14, 60))
    def test_period_recovered_across_symbol_rates(self, period):
        bits = [1, 0] * 20
        env = synthetic_envelope(bits, period_frames=period)
        decoder = BatchDecoder(1e6, expected_bit_period_s=period / 1000.0)
        result = decoder.decode_envelope(env)
        assert result.period_frames == pytest.approx(period, rel=0.12)
