"""Tests for the Figure 9 baseline channel models."""

import numpy as np
import pytest

from repro.baselines import (
    AcousticChannel,
    AirHopperChannel,
    DfsChannel,
    FuntennaChannel,
    GSMemChannel,
    PowertChannel,
    ThermalChannel,
    USBeeChannel,
    all_baselines,
)


def rng():
    return np.random.default_rng(17)


class TestGenericBehaviour:
    @pytest.mark.parametrize("channel", all_baselines(), ids=lambda c: c.name)
    def test_ber_increases_with_rate(self, channel):
        lo_rate = channel.rate_bracket[0] * 2
        hi_rate = channel.rate_bracket[1] / 2
        ber_lo = channel.ber_at_rate(lo_rate, rng(), n_bits=3000)
        ber_hi = channel.ber_at_rate(hi_rate, rng(), n_bits=3000)
        assert ber_hi >= ber_lo

    @pytest.mark.parametrize("channel", all_baselines(), ids=lambda c: c.name)
    def test_ber_bounded(self, channel):
        ber = channel.ber_at_rate(100.0, rng(), n_bits=1000)
        assert 0.0 <= ber <= 0.6

    @pytest.mark.parametrize("channel", all_baselines(), ids=lambda c: c.name)
    def test_max_rate_within_bracket(self, channel):
        rate = channel.max_rate(rng=rng(), n_bits=800, iterations=10)
        lo, hi = channel.rate_bracket
        assert lo <= rate <= hi


class TestReportedBands:
    """Each baseline must land in the band its paper reported."""

    def test_gsmem_near_1kbps(self):
        rate = GSMemChannel().max_rate(rng=rng())
        assert 700 < rate < 1700

    def test_usbee_near_640bps(self):
        rate = USBeeChannel().max_rate(rng=rng())
        assert 400 < rate < 1000

    def test_airhopper_near_480bps(self):
        rate = AirHopperChannel().max_rate(rng=rng())
        assert 250 < rate < 700

    def test_powert_near_185bps(self):
        rate = PowertChannel().max_rate(rng=rng())
        assert 100 < rate < 300

    def test_dfs_tens_of_bps(self):
        rate = DfsChannel().max_rate(rng=rng())
        assert 20 < rate < 200

    def test_acoustic_tens_of_bps(self):
        rate = AcousticChannel().max_rate(rng=rng())
        assert 10 < rate < 80

    def test_funtenna_tens_of_bps(self):
        rate = FuntennaChannel().max_rate(rng=rng())
        assert 5 < rate < 80

    def test_thermal_single_digit_bps(self):
        rate = ThermalChannel().max_rate(rng=rng())
        assert 0.2 < rate < 10


class TestOrdering:
    def test_gsmem_is_fastest_baseline(self):
        rates = {
            ch.name: ch.max_rate(rng=rng(), n_bits=1500, iterations=12)
            for ch in all_baselines()
        }
        assert max(rates, key=rates.get) == "GSMem"

    def test_thermal_is_slowest(self):
        rates = {
            ch.name: ch.max_rate(rng=rng(), n_bits=1500, iterations=12)
            for ch in all_baselines()
        }
        assert min(rates, key=rates.get) == "Thermal"


class TestMechanisms:
    def test_thermal_limited_by_time_constant(self):
        fast_package = ThermalChannel(time_constant_s=0.1)
        slow_package = ThermalChannel(time_constant_s=2.0)
        assert fast_package.max_rate(rng=rng()) > slow_package.max_rate(
            rng=rng()
        )

    def test_usbee_cannot_beat_frame_rate(self):
        ch = USBeeChannel()
        assert ch.ber_at_rate(2000.0, rng()) == pytest.approx(0.5)

    def test_dfs_limited_by_governor_period(self):
        fast_gov = DfsChannel(governor_period_s=1e-3)
        slow_gov = DfsChannel(governor_period_s=50e-3)
        assert fast_gov.max_rate(rng=rng()) > slow_gov.max_rate(rng=rng())

    def test_powert_improves_with_modulation_depth(self):
        shallow = PowertChannel(modulation_depth=0.02)
        deep = PowertChannel(modulation_depth=0.2)
        assert deep.max_rate(rng=rng()) > shallow.max_rate(rng=rng())

    def test_acoustic_limited_by_reverb(self):
        dry_room = AcousticChannel(reverb_decay_s=5e-3)
        wet_room = AcousticChannel(reverb_decay_s=200e-3)
        assert dry_room.max_rate(rng=rng()) > wet_room.max_rate(rng=rng())
