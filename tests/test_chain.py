"""Tests for the shared analog chain module."""

import numpy as np
import pytest

from repro.chain import (
    paper_tuned_frequency_hz,
    render_capture,
    render_emission,
    run_power_chain,
    tuned_frequency_hz,
)
from repro.em.environment import near_field_scenario
from repro.params import PAPER, TINY
from repro.power.workload import alternating_workload
from repro.systems.laptops import DELL_INSPIRON


class TestTuning:
    def test_tuned_between_fundamental_and_harmonic(self):
        f = tuned_frequency_hz(DELL_INSPIRON, TINY)
        f0 = DELL_INSPIRON.vrm_frequency_hz / TINY.total_freq_divisor
        assert f == pytest.approx(1.5 * f0)

    def test_paper_tuning_ignores_profile(self):
        assert paper_tuned_frequency_hz(DELL_INSPIRON) == pytest.approx(
            1.5 * DELL_INSPIRON.vrm_frequency_hz
        )

    def test_profile_scales_tuning(self):
        assert tuned_frequency_hz(DELL_INSPIRON, PAPER) == pytest.approx(
            100 * tuned_frequency_hz(DELL_INSPIRON, TINY)
        )


class TestPowerChain:
    def test_power_trace_covers_workload(self):
        workload = alternating_workload(
            TINY.dilate(2e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
        )
        trace = run_power_chain(
            DELL_INSPIRON, workload, TINY, np.random.default_rng(0)
        )
        assert trace.residencies[-1].end == pytest.approx(workload.duration)

    def test_bios_knob_restricts_states(self):
        workload = alternating_workload(
            TINY.dilate(2e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
        )
        trace = run_power_chain(
            DELL_INSPIRON,
            workload,
            TINY,
            np.random.default_rng(0),
            allow_c_states=False,
        )
        assert all(r.c_state == 0 for r in trace.residencies)


class TestRendering:
    def test_emission_length_matches_duration(self):
        workload = alternating_workload(
            TINY.dilate(2e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
        )
        wave = render_emission(
            DELL_INSPIRON, workload, TINY, np.random.default_rng(1)
        )
        assert wave.size == pytest.approx(
            workload.duration * TINY.rf_sample_rate_hz, abs=2
        )

    def test_capture_tunes_to_machine(self):
        workload = alternating_workload(
            TINY.dilate(2e-3), TINY.dilate(0.5e-3), TINY.dilate(0.5e-3)
        )
        scenario = near_field_scenario(tuned_frequency_hz(DELL_INSPIRON, TINY))
        capture = render_capture(
            DELL_INSPIRON, workload, scenario, TINY, np.random.default_rng(2)
        )
        assert capture.center_frequency == pytest.approx(
            tuned_frequency_hz(DELL_INSPIRON, TINY)
        )

    def test_dithering_hook_applied(self):
        from repro.countermeasures import VrmDithering

        workload = alternating_workload(
            TINY.dilate(2e-3), TINY.dilate(1e-3), TINY.dilate(0.2e-3)
        )
        clean = render_emission(
            DELL_INSPIRON, workload, TINY, np.random.default_rng(3)
        )
        dithered = render_emission(
            DELL_INSPIRON,
            workload,
            TINY,
            np.random.default_rng(3),
            vrm_dithering=VrmDithering(spread_rel=0.1),
        )
        f0 = DELL_INSPIRON.vrm_frequency_hz / TINY.total_freq_divisor
        freqs = np.fft.rfftfreq(clean.size, 1 / TINY.rf_sample_rate_hz)
        line = np.argmin(np.abs(freqs - f0))
        clean_line = np.abs(np.fft.rfft(clean))[line]
        dithered_line = np.abs(np.fft.rfft(dithered[: clean.size]))[line]
        assert dithered_line < 0.7 * clean_line
