"""Span-registry conformance: every name in ``REGISTERED_SPANS`` is
emitted by a real, test-exercised code path.

The registry (``repro.obs.trace.REGISTERED_SPANS``) is the static half
of the contract - lint rule TRACE001 rejects ``span("...")`` call sites
whose name is not registered.  This module is the dynamic half: a
registered name that no workload emits is dead weight (or a span the
tests silently stopped covering), so the union of spans observed over
one pass of each subsystem's smallest workload must equal the registry
exactly, in both directions.
"""

import numpy as np
import pytest

from repro.exec.cache import reset_chain_cache
from repro.exec.context import execution_scope
from repro.exec.executor import BatchExecutor, choose_executor
from repro.exec.pool import parallel_map
from repro.mux.pool import ChunkPool
from repro.mux.scheduler import StreamMultiplexer
from repro.obs.trace import REGISTERED_SPANS, collect_events
from repro.scenario.component import Component
from repro.scenario.engine import run_components
from repro.stream import CaptureChunkSource, StreamingReceiver, StreamRunner
from repro.sweep.engine import run_sweep
from repro.sweep.presets import RECEIVER_GRID
from repro.sweep.spec import SweepSpec
from repro.types import IQCapture

SAMPLE_RATE = 24_000.0
VRM_HZ = 5_000.0


def _square(x):
    return x * x


def _noise_capture(n_samples, seed=0):
    rng = np.random.default_rng(seed)
    samples = (
        rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
    ).astype(np.complex64)
    return IQCapture(
        samples=samples, sample_rate=SAMPLE_RATE, center_frequency=0.0
    )


def _sweep_spec(name):
    """Two receiver trials with dithering on: the scalar path walks
    every analog stage span (pmu/vrm/dither/emission/propagation/sdr)
    and the planner/engine emit sweep.plan/group/trial."""
    return SweepSpec(
        name=name,
        base={"bits": 24, "dithering": {"spread_rel": 0.05}},
        zips=[{"receiver": [None, RECEIVER_GRID[0]]}],
    )


class _Probe(Component):
    slot = "transmitter"
    name = "probe"
    provides = ("probe.value",)

    def run(self, ctx):
        ctx.publish(self, "probe.value", 1.0)


def _span_names(events):
    return {e["name"] for e in events if e.get("event") == "span"}


@pytest.fixture(scope="module")
def observed_spans():
    """Union of span names over one tiny workload per subsystem."""
    names = set()

    # Scalar sweep: planner, engine, and the per-stage chain spans.
    reset_chain_cache()
    with collect_events() as events:
        with execution_scope(cache_enabled=True):
            run_sweep(_sweep_spec("conf-scalar"), jobs=1, batch="off")
    names |= _span_names(events)

    # Batched sweep: the trial-major runner and its vector kernels.
    reset_chain_cache()
    with collect_events() as events:
        with execution_scope(cache_enabled=True):
            run_sweep(_sweep_spec("conf-batched"), jobs=1, batch="on")
    names |= _span_names(events)
    reset_chain_cache()

    # Fleet multiplexer: two synthetic streams through a shared pool.
    captures = [_noise_capture(4_096, seed=i) for i in range(2)]
    pool = ChunkPool(16, 256)
    mux = StreamMultiplexer(pool, tick_s=4 * 256 / SAMPLE_RATE)
    for i, capture in enumerate(captures):
        source = CaptureChunkSource(capture, 256)
        mux.add_stream(
            f"s{i}",
            source,
            StreamingReceiver(source.meta, VRM_HZ),
            capacity=8,
        )
    with collect_events() as events:
        mux.run()
    names |= _span_names(events)

    # Standalone stream runner: the per-chunk service span.
    source = CaptureChunkSource(_noise_capture(4_096), 512)
    runner = StreamRunner(source, StreamingReceiver(source.meta, VRM_HZ))
    with collect_events() as events:
        runner.run()
    names |= _span_names(events)

    # Trial fan-out: jobs=2 opens the parallel_map span whether the
    # host fans out for real or degrades to serial on one CPU (jobs=1
    # is the bare reference loop and intentionally spanless).
    with collect_events() as events:
        parallel_map(_square, [1, 2, 3], jobs=2)
    names |= _span_names(events)

    # Adaptive batch executor: every mode brackets its map in
    # batch.execute; the serial decision is the cheapest to exercise.
    with collect_events() as events:
        BatchExecutor(choose_executor(3, jobs=1)).map(_square, [1, 2, 3])
    names |= _span_names(events)

    # Scenario lifecycle: setup -> run -> teardown over one component.
    with collect_events() as events:
        run_components("conf-scenario", [_Probe()])
    names |= _span_names(events)

    return names


def test_every_registered_span_is_emitted(observed_spans):
    missing = REGISTERED_SPANS - observed_spans
    assert not missing, (
        f"registered but never emitted by the conformance workloads: "
        f"{sorted(missing)}"
    )


def test_no_unregistered_span_is_emitted(observed_spans):
    # The dynamic mirror of lint rule TRACE001: workloads only open
    # spans the registry knows about.
    unregistered = observed_spans - REGISTERED_SPANS
    assert not unregistered, f"unregistered spans: {sorted(unregistered)}"
