"""Worker-side observability must survive the process boundary.

ContextVars don't cross into pool workers, so ``parallel_map`` tells
each task whether the parent is tracing/collecting and merges the
buffered events and metric snapshots on return.  These tests push real
work through a real pool and check nothing is lost.
"""

import io
import json


from repro.exec.pool import parallel_map
from repro.obs.metrics import flatten, get_metrics, metrics_scope
from repro.obs.trace import trace_event, tracing_scope


def _observed_square(x):
    registry = get_metrics()
    if registry is not None:
        registry.counter("work.tasks").inc()
        registry.histogram("work.value").observe(x)
    trace_event("task", value=x)
    return x * x


class TestWorkerMerging:
    def test_metrics_merged_across_workers(self):
        with metrics_scope() as registry:
            results = parallel_map(_observed_square, [1, 2, 3, 4], jobs=2)
        assert results == [1, 4, 9, 16]
        flat = flatten(registry.snapshot())
        assert flat["work.tasks"] == 4.0
        assert flat["work.value.count"] == 4.0
        assert flat["work.value.min"] == 1.0
        assert flat["work.value.max"] == 4.0

    def test_events_merged_across_workers(self):
        buf = io.StringIO()
        with tracing_scope(buf):
            parallel_map(_observed_square, [1, 2, 3], jobs=2)
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        tasks = [e for e in events if e["event"] == "task"]
        assert sorted(e["value"] for e in tasks) == [1, 2, 3]
        spans = [e for e in events if e["event"] == "span"]
        assert any(s["name"] == "parallel_map" for s in spans)

    def test_serial_path_needs_no_merging(self):
        with metrics_scope() as registry:
            parallel_map(_observed_square, [5], jobs=4)  # 1 task -> serial
        assert flatten(registry.snapshot())["work.tasks"] == 1.0

    def test_chain_metrics_identical_serial_vs_parallel(self):
        # The merged figures must match a serial run exactly - counters
        # and histogram moments are order-independent.
        def run(jobs):
            with metrics_scope() as registry:
                parallel_map(_observed_square, list(range(6)), jobs=jobs)
            return flatten(registry.snapshot())

        serial, parallel = run(1), run(3)
        # Gauges aside (none here), moments merge exactly.
        assert serial == parallel
