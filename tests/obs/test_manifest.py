"""Tests for run manifests and their runner/CLI integration."""

import json

import pytest

from repro.experiments.runner import run_experiments
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_fingerprint,
    manifest_path,
    read_manifest,
    write_manifest,
)
from repro.params import TINY


class TestBuildManifest:
    def test_minimal_manifest_shape(self):
        manifest = build_manifest(experiment_id="x", seed=3, quick=True)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["chain_schema"] == "chain-v1"
        assert manifest["experiment"] == "x"
        assert manifest["seed"] == 3
        assert len(manifest["config_fingerprint"]) == 16
        assert set(manifest["versions"]) == {"python", "numpy", "scipy"}

    def test_config_fingerprint_sensitivity(self):
        base = config_fingerprint("table2", None, 0, True)
        assert base == config_fingerprint("table2", None, 0, True)
        assert base != config_fingerprint("table2", None, 1, True)
        assert base != config_fingerprint("table3", None, 0, True)
        assert base != config_fingerprint("table2", TINY, 0, True)
        assert base != config_fingerprint("table2", None, 0, False)

    def test_rows_fingerprint_and_metrics(self):
        rows = [{"label": "a", "BER": 0.1}]
        snapshot = {"m": {"type": "gauge", "value": 2.0}}
        manifest = build_manifest(
            experiment_id="x",
            rows=rows,
            metrics_snapshot=snapshot,
            elapsed_s=1.23456,
            timings={"pmu": 0.5},
        )
        assert manifest["n_rows"] == 1
        assert len(manifest["result_fingerprint"]) == 16
        assert manifest["metrics"] == {"m": 2.0}
        assert manifest["elapsed_s"] == 1.235
        assert manifest["timings_s"] == {"pmu": 0.5}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(experiment_id="x")
        path = write_manifest(manifest, manifest_path(tmp_path, "x"))
        assert path.name == "x.manifest.json"
        assert read_manifest(path) == manifest

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="manifest schema"):
            read_manifest(path)


class TestRunnerIntegration:
    def test_every_result_carries_manifest_and_metrics(self, tmp_path):
        results = run_experiments(
            ["table2"],
            quick=True,
            seed=0,
            echo=lambda *_: None,
            manifest_dir=str(tmp_path),
        )
        (result,) = results
        assert result.manifest is not None
        assert result.manifest["experiment"] == "table2"
        assert result.manifest["n_rows"] == len(result.rows)
        # The chain taps fired during the run.
        assert "chain.emission.rms.mean" in result.metrics
        on_disk = read_manifest(manifest_path(tmp_path, "table2"))
        assert on_disk["config_fingerprint"] == result.manifest[
            "config_fingerprint"
        ]
        assert on_disk["metrics"] == result.metrics
