"""Tests for the baseline regression gate.

The acceptance bar: recording then comparing passes, and a 1% physics
perturbation (here: the emission amplitude) demonstrably fails the
gate with a per-metric diff.
"""

import json

import pytest

from repro.obs.baseline import (
    BaselineReport,
    compare,
    compare_metrics,
    record,
    run_scenario,
)
from repro.vrm.emission import EmissionModel


class TestCompareMetrics:
    def test_within_tolerance(self):
        c = compare_metrics({"a": 1.0, "b": 2.0}, {"a": 1.0 + 1e-9, "b": 2.0}, "s")
        assert c.ok
        assert c.n_checked == 2

    def test_drift_detected_with_diff(self):
        c = compare_metrics({"a": 1.0}, {"a": 1.01}, "s")
        assert not c.ok
        (diff,) = c.diffs
        assert diff.metric == "a"
        assert diff.rel_error == pytest.approx(0.01)
        assert "expected 1.0" in diff.render()

    def test_missing_metric_fails_extra_does_not(self):
        c = compare_metrics({"a": 1.0}, {"b": 1.0}, "s")
        assert not c.ok
        assert c.missing == ["a"]
        c2 = compare_metrics({"a": 1.0}, {"a": 1.0, "b": 5.0}, "s")
        assert c2.ok
        assert c2.extra == ["b"]


class TestScenarios:
    def test_scenarios_are_deterministic(self):
        first = run_scenario("chain-emission-tiny")
        second = run_scenario("chain-emission-tiny")
        assert first == second
        assert "chain.emission.rms.mean" in first

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown baseline scenario"):
            run_scenario("nope")


class TestRecordCompare:
    def test_record_then_compare_passes(self, tmp_path):
        paths = record(tmp_path, scenarios=["chain-emission-tiny"])
        assert [p.name for p in paths] == ["chain-emission-tiny.json"]
        payload = json.loads(paths[0].read_text())
        assert payload["chain_schema"] == "chain-v1"
        report = compare(tmp_path, scenarios=["chain-emission-tiny"])
        assert report.ok
        assert "regress: OK" in report.render()

    def test_missing_baseline_fails_with_instructions(self, tmp_path):
        report = compare(tmp_path, scenarios=["chain-emission-tiny"])
        assert not report.ok
        assert "--record" in report.render()

    def test_schema_mismatch_refuses_comparison(self, tmp_path):
        (path,) = record(tmp_path, scenarios=["chain-emission-tiny"])
        payload = json.loads(path.read_text())
        payload["chain_schema"] = "chain-v0"
        path.write_text(json.dumps(payload))
        report = compare(tmp_path, scenarios=["chain-emission-tiny"])
        assert not report.ok
        assert "re-record" in report.render()

    def test_one_percent_emission_perturbation_fails_gate(
        self, tmp_path, monkeypatch
    ):
        record(tmp_path, scenarios=["chain-emission-tiny"])
        original = EmissionModel.synthesize

        def perturbed(self, bursts, sample_rate):
            return 1.01 * original(self, bursts, sample_rate)

        monkeypatch.setattr(EmissionModel, "synthesize", perturbed)
        report = compare(tmp_path, scenarios=["chain-emission-tiny"])
        assert not report.ok
        rendered = report.render()
        assert "chain.emission.rms" in rendered
        assert "regress: FAILED" in rendered

    def test_report_aggregates_scenarios(self):
        report = BaselineReport(
            comparisons=[
                compare_metrics({"a": 1.0}, {"a": 1.0}, "s1"),
                compare_metrics({"a": 1.0}, {"a": 2.0}, "s2"),
            ]
        )
        assert not report.ok
        assert "ok   s1" in report.render()
        assert "FAIL s2" in report.render()


class TestCommittedBaselines:
    def test_committed_chain_emission_baseline_matches(self, repo_baselines):
        # The cheapest committed baseline must hold for the working
        # tree; the full gate (all scenarios) runs as `make regress`.
        report = compare(repo_baselines, scenarios=["chain-emission-tiny"])
        assert report.ok, report.render()


@pytest.fixture
def repo_baselines():
    from pathlib import Path

    directory = Path(__file__).parents[2] / "baselines"
    if not directory.exists():
        pytest.skip("no committed baselines directory")
    return directory
