"""Tests for the structured tracer."""

import io
import json

import numpy as np
import pytest

from repro.chain import render_emission
from repro.exec.context import execution_scope
from repro.obs.trace import (
    collect_events,
    key_prefix,
    merge_events,
    rng_digest,
    span,
    trace_event,
    tracing_active,
    tracing_scope,
)
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON
from repro.types import ActivityTrace, Interval


def _events(buf: io.StringIO):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestTracerBasics:
    def test_off_by_default(self):
        assert not tracing_active()
        trace_event("noop", value=1)  # must be a silent no-op

    def test_scope_writes_jsonl(self):
        buf = io.StringIO()
        with tracing_scope(buf):
            assert tracing_active()
            trace_event("ping", value=3)
        events = _events(buf)
        assert len(events) == 1
        assert events[0]["event"] == "ping"
        assert events[0]["value"] == 3
        assert events[0]["ts"] >= 0
        assert events[0]["pid"] > 0
        assert not tracing_active()

    def test_scope_opens_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing_scope(str(path)):
            trace_event("ping")
        assert json.loads(path.read_text())["event"] == "ping"

    def test_span_records_duration_and_lazy_attrs(self):
        buf = io.StringIO()
        calls = []
        with tracing_scope(buf):
            with span("work", {"cache": "miss"}, lazy=lambda: calls.append(1) or {"extra": 7}):
                pass
        (event,) = _events(buf)
        assert event["name"] == "work"
        assert event["cache"] == "miss"
        assert event["extra"] == 7
        assert event["duration_s"] >= 0
        assert calls == [1]

    def test_span_lazy_not_called_when_off(self):
        with span("work", lazy=lambda: pytest.fail("must stay lazy")):
            pass

    def test_numpy_values_coerced(self):
        buf = io.StringIO()
        with tracing_scope(buf):
            trace_event("n", count=np.int64(4), rate=np.float64(0.5))
        (event,) = _events(buf)
        assert event["count"] == 4
        assert event["rate"] == 0.5

    def test_key_prefix(self):
        assert key_prefix(None) is None
        assert key_prefix("ab" * 32) == "abababababab"

    def test_rng_digest_tracks_state(self):
        rng = np.random.default_rng(0)
        before = rng_digest(rng)
        assert rng_digest(np.random.default_rng(0)) == before
        rng.random()
        assert rng_digest(rng) != before


class TestWorkerMerging:
    def test_collect_and_merge(self):
        with collect_events() as buffered:
            trace_event("inner", step=1)
        assert buffered[0]["event"] == "inner"
        buf = io.StringIO()
        with tracing_scope(buf):
            merge_events(buffered)
        (event,) = _events(buf)
        assert event == buffered[0]  # replayed verbatim, own timeline

    def test_merge_without_tracer_is_noop(self):
        merge_events([{"event": "orphan"}])


class TestChainSpans:
    def test_stages_and_cache_disposition(self):
        activity = ActivityTrace([Interval(0.001, 0.003)], duration=0.005)
        buf = io.StringIO()
        with execution_scope(cache_enabled=True), tracing_scope(buf):
            render_emission(
                DELL_INSPIRON, activity, TINY, np.random.default_rng(1)
            )
            render_emission(
                DELL_INSPIRON, activity, TINY, np.random.default_rng(1)
            )
        events = _events(buf)
        spans = [e for e in events if e["event"] == "span"]
        stages = [e for e in events if e["event"] == "stage"]
        # First render computes (spans tagged miss); second hits.
        assert {s["name"] for s in spans} >= {"pmu", "vrm", "emission"}
        assert all(s["cache"] == "miss" for s in spans)
        assert any(s["cache"] == "hit" for s in stages)
        hit = next(s for s in stages if s["cache"] == "hit")
        assert len(hit["key"]) == 12
        assert len(hit["rng"]) == 12
