"""Tests for the metrics registry and the chain taps."""

import numpy as np
import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    flatten,
    get_metrics,
    metrics_active,
    metrics_scope,
    tap_capture,
    tap_emission,
    tap_receiver,
)
from repro.types import IQCapture


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(4)
        for v in (1.0, 3.0, 2.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.5}
        assert snap["g"] == {"type": "gauge", "value": 4.0}
        assert snap["h"]["count"] == 3
        assert snap["h"]["min"] == 1.0
        assert snap["h"]["max"] == 3.0
        assert snap["h"]["mean"] == pytest.approx(2.0)

    def test_merge_snapshot_is_exact(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(1)
        parent.histogram("h").observe(1.0)
        worker.counter("c").inc(2)
        worker.histogram("h").observe(5.0)
        worker.gauge("g").set(9)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["c"]["value"] == 3
        assert snap["h"]["count"] == 2
        assert snap["h"]["max"] == 5.0
        assert snap["g"]["value"] == 9.0

    def test_flatten(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(4.0)
        flat = flatten(reg.snapshot())
        assert flat == {
            "g": 2.0,
            "h.count": 1.0,
            "h.mean": 4.0,
            "h.min": 4.0,
            "h.max": 4.0,
        }

    def test_scope_install_and_teardown(self):
        assert not metrics_active()
        with metrics_scope() as reg:
            assert get_metrics() is reg
        assert get_metrics() is None


class TestTaps:
    def test_taps_are_noops_when_off(self):
        # Must not raise, must not allocate a registry.
        tap_emission(np.ones(8))
        tap_receiver(np.ones(8), 3)
        assert not metrics_active()

    def test_emission_rms(self):
        with metrics_scope() as reg:
            tap_emission(np.full(16, 2.0))
        assert flatten(reg.snapshot())["chain.emission.rms.mean"] == pytest.approx(2.0)

    def test_capture_clip_rate(self):
        # 8-bit ADC rails at +127/128 and -1; half the samples pinned.
        pinned = (127 / 128) + 0j
        samples = np.array([pinned, 0.1 + 0.1j, -1.0j, 0.0j], dtype=np.complex64)
        capture = IQCapture(
            samples=samples, sample_rate=1e6, center_frequency=1e6
        )
        with metrics_scope() as reg:
            tap_capture(capture, adc_bits=8)
        assert flatten(reg.snapshot())["chain.sdr.clip_rate.mean"] == pytest.approx(0.5)

    def test_receiver_contrast_clean_ook(self):
        powers = np.array([0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.12, 0.88])
        with metrics_scope() as reg:
            tap_receiver(powers, n_edges=4)
        flat = flatten(reg.snapshot())
        assert flat["rx.edges.count.mean"] == 4.0
        # (hi - lo) / (hi + lo) with hi ~0.89, lo ~0.105.
        assert flat["rx.envelope.bimodal_contrast.mean"] == pytest.approx(
            0.79, abs=0.02
        )

    def test_receiver_collapsed_envelope_scores_zero(self):
        with metrics_scope() as reg:
            tap_receiver(np.full(8, 0.5), n_edges=0)
        contrast = flatten(reg.snapshot()).get(
            "rx.envelope.bimodal_contrast.mean", 0.0
        )
        assert contrast == pytest.approx(0.0, abs=1e-9)
