"""Tests for the chunk-incremental DSP.

The core claim of the streaming subsystem: feeding the same samples in
*any* chunking yields bit-identical STFT frames, envelopes and
convolutions.  Everything downstream (receiver equivalence, baselines)
rests on these tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import AcquisitionConfig, acquire
from repro.dsp.filters import edge_kernel
from repro.dsp.stft import stft
from repro.stream.demod import (
    StreamingBandEnergy,
    StreamingConvolver,
    StreamingSTFT,
    streaming_envelope,
)
from repro.stream.source import StreamMeta
from repro.types import IQCapture


def _signal(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)


def _chunked(x, sizes):
    """Split ``x`` into chunks of the given sizes, cycling as needed."""
    out, pos, i = [], 0, 0
    while pos < x.size:
        size = sizes[i % len(sizes)]
        out.append(x[pos : pos + size])
        pos += size
        i += 1
    return out


class TestStreamingSTFT:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingSTFT(1e3, fft_size=1, hop=4)
        with pytest.raises(ValueError):
            StreamingSTFT(1e3, fft_size=64, hop=0)

    @pytest.mark.parametrize("chunk", [1, 17, 64, 100, 4096, 100_000])
    def test_bit_exact_with_batch_for_any_chunking(self, chunk):
        x = _signal(3000)
        batch = stft(x, 1e4, fft_size=128, hop=32)
        s = StreamingSTFT(1e4, fft_size=128, hop=32)
        rows, times = [], []
        for piece in _chunked(x, [chunk]):
            mags, first = s.push(piece)
            if mags.shape[0]:
                rows.append(mags)
                times.append(s.times(first, mags.shape[0]))
        got = np.concatenate(rows)
        np.testing.assert_array_equal(got, batch.magnitudes)
        np.testing.assert_array_equal(np.concatenate(times), batch.times)
        np.testing.assert_array_equal(s.frequencies, batch.frequencies)

    def test_hop_larger_than_fft_size(self):
        x = _signal(2000, seed=3)
        batch = stft(x, 1e4, fft_size=64, hop=100)
        s = StreamingSTFT(1e4, fft_size=64, hop=100)
        rows = [s.push(piece)[0] for piece in _chunked(x, [97])]
        got = np.concatenate([r for r in rows if r.shape[0]])
        np.testing.assert_array_equal(got, batch.magnitudes)

    def test_real_input_one_sided(self):
        x = np.random.default_rng(1).normal(size=1000)
        batch = stft(x, 1e3, fft_size=64, hop=16)
        s = StreamingSTFT(1e3, fft_size=64, hop=16, complex_input=False)
        rows = [s.push(piece)[0] for piece in _chunked(x, [33])]
        got = np.concatenate([r for r in rows if r.shape[0]])
        np.testing.assert_array_equal(got, batch.magnitudes)
        np.testing.assert_array_equal(s.frequencies, batch.frequencies)

    @settings(deadline=None, max_examples=25)
    @given(
        sizes=st.lists(st.integers(1, 400), min_size=1, max_size=8),
        fft_size=st.sampled_from([16, 64, 128]),
        hop=st.sampled_from([1, 7, 16, 40]),
    )
    def test_property_chunking_never_changes_frames(self, sizes, fft_size, hop):
        x = _signal(1500, seed=42)
        batch = stft(x, 1e4, fft_size=fft_size, hop=hop)
        s = StreamingSTFT(1e4, fft_size=fft_size, hop=hop)
        rows = [s.push(piece)[0] for piece in _chunked(x, sizes)]
        got = np.concatenate([r for r in rows if r.shape[0]])
        assert s.n_samples == x.size
        np.testing.assert_array_equal(got, batch.magnitudes)


class TestStreamingEnvelope:
    def test_matches_batch_acquire(self):
        fs = 2e5
        n = 20_000
        t = np.arange(n) / fs
        vrm = 2.5e4
        x = (
            np.exp(2j * np.pi * (vrm - 3.75e4) * t)
            + 0.5 * np.exp(2j * np.pi * (2 * vrm - 3.75e4) * t)
        ).astype(np.complex64)
        capture = IQCapture(
            samples=x, sample_rate=fs, center_frequency=3.75e4
        )
        config = AcquisitionConfig(fft_size=256, hop=32)
        batch = acquire(capture, vrm, config)
        meta = StreamMeta(sample_rate=fs, center_frequency=3.75e4)
        band = streaming_envelope(meta, vrm, config)
        ys, ts = [], []
        for piece in _chunked(x, [777]):
            y, tt = band.push(piece)
            ys.append(y)
            ts.append(tt)
        np.testing.assert_array_equal(np.concatenate(ys), batch.samples)
        np.testing.assert_array_equal(np.concatenate(ts), batch.times)
        assert band.frame_rate == batch.frame_rate

    def test_rejects_empty_bins(self):
        s = StreamingSTFT(1e3, fft_size=16, hop=4)
        with pytest.raises(ValueError):
            StreamingBandEnergy(s, np.array([], dtype=int))


class TestStreamingConvolver:
    @pytest.mark.parametrize("kernel_len", [2, 5, 8, 31])
    @pytest.mark.parametrize("chunk", [1, 3, 50, 1000])
    def test_matches_same_mode_convolution(self, kernel_len, chunk):
        x = np.random.default_rng(9).normal(size=400)
        kernel = edge_kernel(kernel_len)
        want = np.convolve(x, kernel, mode="same")
        conv = StreamingConvolver(kernel)
        parts = [conv.push(piece) for piece in _chunked(x, [chunk])]
        parts.append(conv.finalize())
        got = np.concatenate(parts)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)
        assert got.size == want.size

    @settings(deadline=None, max_examples=25)
    @given(
        sizes=st.lists(st.integers(1, 97), min_size=1, max_size=6),
        kernel_len=st.integers(2, 40),
        # Streams at least one kernel long: below that, numpy's "same"
        # mode pads out to the *kernel* length (documented degenerate
        # case the receiver never hits).
        n=st.integers(40, 300),
    )
    def test_property_chunking_never_changes_output(self, sizes, kernel_len, n):
        x = np.random.default_rng(5).normal(size=n)
        kernel = edge_kernel(kernel_len)
        want = np.convolve(x, kernel, mode="same")
        conv = StreamingConvolver(kernel)
        parts = [conv.push(piece) for piece in _chunked(x, sizes)]
        parts.append(conv.finalize())
        got = np.concatenate(parts)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)

    def test_push_after_finalize_raises(self):
        conv = StreamingConvolver(edge_kernel(4))
        conv.push(np.ones(10))
        conv.finalize()
        with pytest.raises(RuntimeError):
            conv.push(np.ones(2))


class TestBufferReuse:
    """The preallocated window buffer: reuse is invisible in the output."""

    def test_reserved_buffer_never_regrows(self):
        x = _signal(50_000)
        batch = stft(x, 1e4, fft_size=128, hop=32)
        s = StreamingSTFT(1e4, fft_size=128, hop=32)
        s.reserve(2 * 4096)
        cap = s.buffer_capacity
        rows = [s.push(piece)[0] for piece in _chunked(x, [4096])]
        assert s.buffer_capacity == cap  # compaction, never reallocation
        got = np.concatenate([r for r in rows if r.size])
        assert np.array_equal(got, batch.magnitudes)

    def test_unreserved_growth_is_bit_identical(self):
        x = _signal(9000)
        batch = stft(x, 1e4, fft_size=64, hop=16)
        s = StreamingSTFT(1e4, fft_size=64, hop=16)
        assert s.buffer_capacity == 64  # starts window-sized
        rows = [s.push(piece)[0] for piece in _chunked(x, [3000])]
        assert s.buffer_capacity >= 3000  # grew on demand
        got = np.concatenate([r for r in rows if r.size])
        assert np.array_equal(got, batch.magnitudes)

    def test_reserve_preserves_pending_tail(self):
        x = _signal(500)
        batch = stft(x, 1e4, fft_size=128, hop=32)
        s = StreamingSTFT(1e4, fft_size=128, hop=32)
        first = s.push(x[:200])[0]
        s.reserve(100_000)  # mid-stream growth must carry the tail
        rest = s.push(x[200:])[0]
        got = np.concatenate([first, rest])
        assert np.array_equal(got, batch.magnitudes)

    def test_reserve_noop_when_already_large_enough(self):
        s = StreamingSTFT(1e4, fft_size=64, hop=16)
        s.reserve(1024)
        cap = s.buffer_capacity
        s.reserve(10)
        assert s.buffer_capacity == cap
