"""Stream driver: backpressure, drop injection, degradation, accounting."""

import warnings

import numpy as np
import pytest

from repro.core.align import align_bits
from repro.obs.metrics import flatten, metrics_scope
from repro.obs.trace import tracing_scope
from repro.params import TINY
from repro.stream import CaptureChunkSource, StreamingReceiver, StreamRunner
from repro.systems.laptops import DELL_INSPIRON


@pytest.fixture(scope="module")
def link():
    from repro.covert.link import CovertLink

    return CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=5)


@pytest.fixture(scope="module")
def bit_period(link):
    return link.transmitter(
        np.random.default_rng(link.seed)
    ).nominal_bit_duration_s()


def _receiver(link, source, bit_period):
    return StreamingReceiver(
        source.meta,
        link.vrm_frequency_hz,
        expected_bit_period_s=bit_period,
        config=link.decoder_config,
        frame_format=link.frame_format,
    )


def _overloaded_runner(link, capture, bit_period, policy, **kwargs):
    """A runner whose simulated receiver is far too slow to keep up."""
    source = CaptureChunkSource(capture, 4096, jitter_rel=0.05)
    receiver = _receiver(link, source, bit_period)
    runner = StreamRunner(
        source,
        receiver,
        buffer_capacity=8,
        policy=policy,
        service_rate_sps=capture.sample_rate * 0.4,
        **kwargs,
    )
    return runner, receiver


class TestLosslessPath:
    def test_infinite_service_rate_is_lossless(
        self, link, link_result, bit_period
    ):
        source = CaptureChunkSource(link_result.capture, 4096, jitter_rel=0.2)
        receiver = _receiver(link, source, bit_period)
        run = StreamRunner(source, receiver, buffer_capacity=4).run()
        s = run.stats
        assert s.lossless
        assert s.chunks_processed == s.chunks_total
        assert s.chunks_dropped == 0 and s.chunks_shed == 0
        assert s.gap_samples == 0
        assert s.samples_processed == link_result.capture.samples.size
        np.testing.assert_array_equal(
            receiver.finalize().bits, link_result.decode.bits
        )

    def test_block_policy_never_drops_even_overloaded(
        self, link, link_result, bit_period
    ):
        runner, receiver = _overloaded_runner(
            link, link_result.capture, bit_period, "block",
            degrade_threshold=None,
        )
        run = runner.run()
        assert run.stats.chunks_dropped == 0
        assert run.stats.chunks_shed == 0
        assert run.stats.lossless
        # Backpressure is visible as lag instead of loss.
        assert run.stats.max_lag_s > 0
        np.testing.assert_array_equal(
            receiver.finalize().bits, link_result.decode.bits
        )


class TestDropInjection:
    def test_drops_counted_and_decode_survives(
        self, link, link_result, bit_period
    ):
        clean_ber = link_result.metrics.ber
        runner, receiver = _overloaded_runner(
            link, link_result.capture, bit_period, "drop-oldest"
        )
        with metrics_scope() as registry, warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = runner.run()
        s = run.stats
        assert not s.lossless
        assert s.chunks_dropped + s.chunks_shed > 0
        # Every lost sample that sits *before* later-processed data was
        # replayed into the receiver as a gap (loss at the very end of
        # the stream has nothing after it to trigger back-filling).
        assert 0 < s.gap_samples <= s.samples_dropped + s.samples_shed
        assert (
            s.samples_processed + s.samples_dropped + s.samples_shed
            == link_result.capture.samples.size
        )
        # The lossy stream still finalises without crashing, with a BER
        # no better than the clean run.
        final = receiver.finalize()
        lossy_ber = align_bits(link_result.tx_bits, final.bits).ber
        assert lossy_ber >= clean_ber
        # Loss is visible in the metrics registry.
        flat = flatten(registry.snapshot())
        assert (
            flat.get("stream.dropped.chunks", 0)
            + flat.get("stream.degraded.chunks", 0)
            > 0
        )
        assert flat["stream.chunks"] == s.chunks_processed
        assert flat["stream.lag_s.max"] == pytest.approx(s.max_lag_s)

    def test_degradation_warns_once_and_traces(
        self, link, link_result, bit_period
    ):
        runner, _ = _overloaded_runner(
            link, link_result.capture, bit_period, "drop-oldest"
        )
        events = []
        with tracing_scope(events):
            with pytest.warns(RuntimeWarning, match="falling behind"):
                run = runner.run()
        assert run.stats.degraded
        warnings_seen = [
            e for e in events
            if e.get("event") == "warning"
            and e.get("kind") == "stream-degraded"
        ]
        assert len(warnings_seen) == 1
        spans = [e for e in events if e.get("name") == "stream.chunk"]
        assert len(spans) == run.stats.chunks_processed
        assert all("lag_s" in e and "occupancy" in e for e in spans)

    def test_degradation_disabled(self, link, link_result, bit_period):
        runner, _ = _overloaded_runner(
            link, link_result.capture, bit_period, "drop-oldest",
            degrade_threshold=None,
        )
        run = runner.run()
        assert run.stats.chunks_shed == 0
        assert run.stats.chunks_dropped > 0  # all loss is eviction


class TestValidation:
    def test_rejects_bad_service_rate(self, link, link_result, bit_period):
        source = CaptureChunkSource(link_result.capture, 4096)
        receiver = _receiver(link, source, bit_period)
        with pytest.raises(ValueError):
            StreamRunner(source, receiver, service_rate_sps=0)

    def test_rejects_bad_degrade_threshold(
        self, link, link_result, bit_period
    ):
        source = CaptureChunkSource(link_result.capture, 4096)
        receiver = _receiver(link, source, bit_period)
        with pytest.raises(ValueError):
            StreamRunner(source, receiver, degrade_threshold=1.5)


class TestAdaptiveService:
    def test_executor_decision_recorded_and_buffers_reserved(
        self, link, link_result, bit_period
    ):
        from repro.obs.trace import collect_events

        source = CaptureChunkSource(link_result.capture, 4096)
        receiver = _receiver(link, source, bit_period)
        runner = StreamRunner(source, receiver)
        with collect_events() as events:
            result = runner.run()
        # Chunk DSP is stateful and ordered: the only admissible mode.
        assert result.stats.executor == "batched-serial"
        assert result.stats.as_dict()["executor"] == "batched-serial"
        # The decision is traced with its reasoning.
        decisions = [e for e in events if e.get("event") == "batch.executor"]
        assert len(decisions) == 1
        assert decisions[0]["mode"] == "batched-serial"
        # And the receiver's STFT buffer was sized for chunk reuse.
        assert receiver._band.sstft.buffer_capacity >= 2 * 4096

    def test_reserved_run_is_still_bit_exact(
        self, link, link_result, bit_period
    ):
        source = CaptureChunkSource(link_result.capture, 4096)
        receiver = _receiver(link, source, bit_period)
        StreamRunner(source, receiver).run()
        final = receiver.finalize()
        assert np.array_equal(final.bits, link_result.decode.bits)
