"""Streaming covert receiver: equivalence with the batch decoder.

The headline guarantee of ``repro.stream``: a drop-free streaming run
finalises to the *exact* bits the batch decoder produces from the same
capture, for any chunking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import BatchDecoder
from repro.params import TINY
from repro.stream import CaptureChunkSource, StreamingReceiver, StreamRunner
from repro.systems.laptops import DELL_INSPIRON
from repro.types import IQCapture


@pytest.fixture(scope="module")
def link():
    from repro.covert.link import CovertLink

    return CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=5)


@pytest.fixture(scope="module")
def bit_period(link):
    return link.transmitter(
        np.random.default_rng(link.seed)
    ).nominal_bit_duration_s()


def _stream_decode(link, capture, bit_period, chunk_size, **runner_kwargs):
    source = CaptureChunkSource(capture, chunk_size, jitter_rel=0.1)
    receiver = StreamingReceiver(
        source.meta,
        link.vrm_frequency_hz,
        expected_bit_period_s=bit_period,
        config=link.decoder_config,
        frame_format=link.frame_format,
    )
    run = StreamRunner(source, receiver, **runner_kwargs).run()
    return receiver, run


class TestBitExactEquivalence:
    @pytest.mark.parametrize("chunk_size", [1024, 4096, 37_777])
    def test_bit_exact_across_chunk_sizes(
        self, link, link_result, bit_period, chunk_size
    ):
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, chunk_size
        )
        assert run.stats.lossless
        final = receiver.finalize()
        np.testing.assert_array_equal(final.bits, link_result.decode.bits)
        np.testing.assert_array_equal(
            final.starts, link_result.decode.starts
        )
        np.testing.assert_array_equal(
            receiver.envelope().samples,
            link_result.decode.envelope.samples,
        )

    def test_chunk_larger_than_capture(self, link, link_result, bit_period):
        n = link_result.capture.samples.size
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, n + 999
        )
        assert run.stats.chunks_total == 1
        final = receiver.finalize()
        np.testing.assert_array_equal(final.bits, link_result.decode.bits)

    def test_single_sample_chunks(self, link, link_result, bit_period):
        # Chunk size 1 on a truncated capture (full-length would be
        # needlessly slow); equivalence is against a batch decode of
        # the same truncation.
        capture = link_result.capture
        short = IQCapture(
            samples=capture.samples[:16_384],
            sample_rate=capture.sample_rate,
            center_frequency=capture.center_frequency,
        )
        batch = BatchDecoder(
            link.vrm_frequency_hz,
            expected_bit_period_s=bit_period,
            config=link.decoder_config,
        ).decode(short)
        receiver, run = _stream_decode(link, short, bit_period, 1)
        assert run.stats.chunks_total == short.samples.size
        final = receiver.finalize()
        np.testing.assert_array_equal(final.bits, batch.bits)

    @settings(deadline=None, max_examples=6)
    @given(chunk_size=st.integers(257, 90_000))
    def test_property_random_chunk_sizes(
        self, link, link_result, bit_period, chunk_size
    ):
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, chunk_size
        )
        assert run.stats.lossless
        np.testing.assert_array_equal(
            receiver.finalize().bits, link_result.decode.bits
        )


class TestOnlineMachinery:
    def test_events_emitted_with_latency_stamps(
        self, link, link_result, bit_period
    ):
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, 4096
        )
        # One event per closed bit: all but the final (unclosed) bit.
        assert run.n_events == link_result.decode.bits.size - 1
        for event in run.events:
            assert event.latency_s >= 0
            assert event.emitted_at_s >= event.time_s
        indices = [e.index for e in run.events]
        assert indices == sorted(indices)

    def test_online_sync_locks_and_stamps_payload(
        self, link, link_result, bit_period
    ):
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, 4096
        )
        assert receiver.synchronized
        assert receiver.payload_start_index is not None
        stamped = [e for e in run.events if e.payload_index is not None]
        assert stamped, "no payload-stamped events after sync"
        assert stamped[0].payload_index == 0

    def test_provisional_bits_close_to_final(
        self, link, link_result, bit_period
    ):
        # The rolling threshold is provisional by design, but on a clean
        # capture it should agree with the batch labels almost always.
        receiver, run = _stream_decode(
            link, link_result.capture, bit_period, 4096
        )
        final = receiver.finalize()
        online = np.array([e.bit for e in run.events])
        agreement = np.mean(online == final.bits[: online.size])
        assert agreement > 0.9

    def test_bootstrap_without_expected_period(self, link, link_result):
        # No expected_bit_period_s: the receiver bootstraps the symbol
        # period online from the envelope autocorrelation, and the
        # finalised decode still matches the batch decoder configured
        # the same way.
        source = CaptureChunkSource(link_result.capture, 4096)
        receiver = StreamingReceiver(
            source.meta,
            link.vrm_frequency_hz,
            config=link.decoder_config,
            frame_format=link.frame_format,
        )
        run = StreamRunner(source, receiver).run()
        assert run.n_events > 0
        batch = BatchDecoder(
            link.vrm_frequency_hz, config=link.decoder_config
        ).decode(link_result.capture)
        np.testing.assert_array_equal(receiver.finalize().bits, batch.bits)

    def test_callback_sees_every_event(self, link, link_result, bit_period):
        seen = []
        source = CaptureChunkSource(link_result.capture, 8192)
        receiver = StreamingReceiver(
            source.meta,
            link.vrm_frequency_hz,
            expected_bit_period_s=bit_period,
            config=link.decoder_config,
            on_event=seen.append,
        )
        run = StreamRunner(source, receiver).run()
        assert len(seen) == run.n_events
        assert seen == receiver.events


class TestValidation:
    def test_rejects_bad_vrm(self, link, link_result):
        source = CaptureChunkSource(link_result.capture, 4096)
        with pytest.raises(ValueError):
            StreamingReceiver(source.meta, 0.0)

    def test_finalize_without_frames_raises(self, link):
        meta = CaptureChunkSource(
            IQCapture(
                samples=np.zeros(8, dtype=np.complex64),
                sample_rate=2e5,
                center_frequency=link.tuned_frequency_hz,
            ),
            chunk_size=8,
        ).meta
        receiver = StreamingReceiver(meta, link.vrm_frequency_hz)
        with pytest.raises(ValueError, match="envelope"):
            receiver.finalize()
