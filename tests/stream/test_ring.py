"""Tests for the bounded chunk buffer."""

import numpy as np
import pytest

from repro.stream.ring import BufferFull, RingBuffer
from repro.stream.source import Chunk


def _chunk(index, size=4):
    return Chunk(
        samples=np.zeros(size, dtype=np.complex64),
        start_sample=index * size,
        index=index,
        arrival_s=index * 0.01,
    )


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            RingBuffer(4, policy="yolo")


class TestBlockPolicy:
    def test_fifo_order(self):
        ring = RingBuffer(3)
        for i in range(3):
            ring.push(_chunk(i))
        assert [ring.pop().index for _ in range(3)] == [0, 1, 2]
        assert ring.pop() is None

    def test_full_push_raises(self):
        ring = RingBuffer(2)
        ring.push(_chunk(0))
        ring.push(_chunk(1))
        assert ring.full
        with pytest.raises(BufferFull):
            ring.push(_chunk(2))
        # Nothing was lost.
        assert ring.dropped_chunks == 0
        assert len(ring) == 2


class TestDropOldestPolicy:
    def test_eviction_returns_and_counts_victims(self):
        ring = RingBuffer(2, policy="drop-oldest")
        assert ring.push(_chunk(0)) == []
        assert ring.push(_chunk(1)) == []
        evicted = ring.push(_chunk(2))
        assert [c.index for c in evicted] == [0]
        assert ring.dropped_chunks == 1
        assert ring.dropped_samples == 4
        assert [ring.pop().index, ring.pop().index] == [1, 2]


class TestAccounting:
    def test_occupancy_and_watermark(self):
        ring = RingBuffer(4)
        assert ring.occupancy == 0.0
        ring.push(_chunk(0))
        ring.push(_chunk(1))
        assert ring.occupancy == pytest.approx(0.5)
        assert ring.high_watermark == 2
        ring.pop()
        assert ring.high_watermark == 2  # watermark is a high-water mark
        assert ring.pushed == 2
        assert ring.popped == 1

    def test_peek_does_not_consume(self):
        ring = RingBuffer(2)
        ring.push(_chunk(7))
        assert ring.peek().index == 7
        assert len(ring) == 1
