"""Streaming keystroke detection vs. the batch Section V-C detector.

Unlike the covert path, the batch keylog detector normalises the whole
capture by its global RMS before the STFT, a statistic a stream cannot
know up front.  The streaming detector therefore tracks the running
sample power and divides the RMS back out at finalisation - the events
come out identical, but thresholds/energies agree only to floating-point
tolerance, so these tests compare events structurally rather than bit
for bit.
"""

import numpy as np
import pytest

from repro.keylog.detector import KeystrokeDetector, match_events
from repro.keylog.evaluate import KeylogExperiment
from repro.stream import CaptureChunkSource, StreamingKeystrokeDetector


@pytest.fixture(scope="module")
def experiment():
    return KeylogExperiment(seed=2)


@pytest.fixture(scope="module")
def batch_run(experiment):
    return experiment.run(text="the quick brown fox")


@pytest.fixture(scope="module")
def stream_run(experiment):
    return experiment.run_streaming(
        text="the quick brown fox", chunk_size=8192
    )


class TestFinalisedEquivalence:
    def test_same_events_as_batch(self, batch_run, stream_run):
        batch_events = batch_run.detection.events
        stream_events = stream_run.result.detection.events
        assert len(stream_events) == len(batch_events)
        for b, s in zip(batch_events, stream_events):
            assert s.start == pytest.approx(b.start, abs=1e-9)
            assert s.end == pytest.approx(b.end, abs=1e-9)

    def test_same_scores_as_batch(self, batch_run, stream_run):
        r = stream_run.result
        assert r.true_positive_rate == pytest.approx(
            batch_run.true_positive_rate
        )
        assert r.false_positive_rate == pytest.approx(
            batch_run.false_positive_rate
        )
        assert r.n_detected == batch_run.n_detected

    def test_threshold_matches_to_fp_tolerance(self, batch_run, stream_run):
        # Scale-equivariance of the bimodal threshold: dividing the RMS
        # out after the fact lands within ulps of normalising up front.
        assert stream_run.result.detection.threshold == pytest.approx(
            batch_run.detection.threshold, rel=1e-6
        )
        np.testing.assert_allclose(
            stream_run.result.detection.band_energy,
            batch_run.detection.band_energy,
            rtol=1e-6,
        )


class TestOnlineEvents:
    def test_latency_stamps(self, stream_run):
        assert stream_run.events, "no online keystroke events"
        for event in stream_run.events:
            assert event.latency_s >= 0
            assert event.emitted_at_s >= event.end
        assert stream_run.mean_detection_latency_s > 0
        assert (
            stream_run.max_detection_latency_s
            >= stream_run.mean_detection_latency_s
        )

    def test_online_events_approximate_batch(
        self, experiment, batch_run, stream_run
    ):
        # The online pass uses a rolling threshold, so it is allowed to
        # differ from the batch events - but on a clean near-field
        # capture it should find essentially the same keystrokes.
        keystrokes, _ = experiment.type_and_capture("the quick brown fox")

        class _Ev:  # minimal adapter for match_events
            def __init__(self, e):
                self.start, self.end = e.start, e.end

        tp, fp, fn = match_events(
            [_Ev(e) for e in stream_run.events], keystrokes
        )
        assert tp / max(len(keystrokes), 1) > 0.8

    def test_direct_detector_flush(self, experiment):
        # Exercising the push/flush surface directly (no runner).
        keystrokes, capture = experiment.type_and_capture("hello")
        source = CaptureChunkSource(capture, 16_384)
        vrm = (
            experiment.machine.vrm_frequency_hz
            / experiment.profile.total_freq_divisor
        )
        detector = StreamingKeystrokeDetector(
            source.meta, vrm, experiment.detector_config
        )
        for chunk in source:
            detector.push_samples(chunk.samples, chunk.arrival_s)
        detector.flush_events(capture.duration)
        batch = KeystrokeDetector(
            vrm, experiment.detector_config
        ).detect(capture)
        final = detector.finalize()
        assert len(final.events) == len(batch.events)
