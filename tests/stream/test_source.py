"""Tests for the chunk sources."""

import numpy as np
import pytest

from repro.stream.source import CaptureChunkSource, Chunk, StreamMeta
from repro.types import IQCapture


def _capture(n=1000, fs=1e4):
    rng = np.random.default_rng(7)
    samples = (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(
        np.complex64
    )
    return IQCapture(samples=samples, sample_rate=fs, center_frequency=1e5)


class TestStreamMeta:
    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            StreamMeta(sample_rate=0, center_frequency=1.0)

    def test_capture_stub_carries_metadata(self):
        meta = StreamMeta(sample_rate=2e6, center_frequency=3e5)
        stub = meta.as_capture_stub()
        assert stub.samples.size == 0
        assert stub.sample_rate == 2e6
        assert stub.baseband_offset(3.5e5) == pytest.approx(5e4)


class TestCaptureChunkSource:
    def test_rejects_bad_parameters(self):
        cap = _capture()
        with pytest.raises(ValueError):
            CaptureChunkSource(cap, chunk_size=0)
        with pytest.raises(ValueError):
            CaptureChunkSource(cap, chunk_size=64, jitter_rel=-0.1)

    def test_chunks_partition_the_capture(self):
        cap = _capture(n=1000)
        source = CaptureChunkSource(cap, chunk_size=300)
        chunks = list(source)
        assert source.n_chunks == 4
        assert [c.size for c in chunks] == [300, 300, 300, 100]
        assert [c.start_sample for c in chunks] == [0, 300, 600, 900]
        assert [c.index for c in chunks] == [0, 1, 2, 3]
        glued = np.concatenate([c.samples for c in chunks])
        np.testing.assert_array_equal(glued, cap.samples)

    def test_oversized_chunk_yields_one_chunk(self):
        cap = _capture(n=500)
        chunks = list(CaptureChunkSource(cap, chunk_size=10_000))
        assert len(chunks) == 1
        assert chunks[0].size == 500

    def test_arrivals_monotone_with_jitter(self):
        cap = _capture(n=5000)
        source = CaptureChunkSource(cap, chunk_size=256, jitter_rel=0.5)
        arrivals = [c.arrival_s for c in source]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        # Jitter only ever delays past the real-time completion.
        for i, t in enumerate(arrivals):
            nominal = min((i + 1) * 256, 5000) / cap.sample_rate
            assert t >= nominal

    def test_jitter_is_seed_deterministic(self):
        cap = _capture()
        a = [c.arrival_s for c in CaptureChunkSource(cap, 128, jitter_rel=0.3)]
        b = [c.arrival_s for c in CaptureChunkSource(cap, 128, jitter_rel=0.3)]
        assert a == b

    def test_chunk_end_sample(self):
        c = Chunk(
            samples=np.zeros(5, dtype=np.complex64),
            start_sample=10,
            index=2,
            arrival_s=0.1,
        )
        assert c.end_sample == 15
