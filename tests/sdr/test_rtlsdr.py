"""Tests for the RTL-SDR device model."""

import numpy as np
import pytest

from repro.sdr.rtlsdr import RtlSdrV3


def tone_input(freq, fs, n=40000, amplitude=1.0):
    t = np.arange(n) / fs
    return amplitude * np.cos(2 * np.pi * freq * t)


class TestCapture:
    def test_output_rate_and_length(self):
        sdr = RtlSdrV3(sample_rate=2.4e5)
        wave = tone_input(1.5e5, 9.6e5)
        cap = sdr.capture(wave, 9.6e5, 1.5e5, np.random.default_rng(0))
        assert cap.sample_rate == 2.4e5
        assert cap.samples.size == wave.size // 4

    def test_rejects_noninteger_decimation(self):
        sdr = RtlSdrV3(sample_rate=2.4e5)
        with pytest.raises(ValueError, match="integer multiple"):
            sdr.capture(np.zeros(100), 5e5, 1e5)

    def test_tone_recovered_at_expected_offset(self):
        sdr = RtlSdrV3(sample_rate=2.4e5, ppm_error=0.0, noise_floor=1e-6)
        wave = tone_input(1.7e5, 9.6e5)
        cap = sdr.capture(wave, 9.6e5, 1.5e5, np.random.default_rng(0))
        spectrum = np.abs(np.fft.fft(cap.samples))
        freqs = np.fft.fftfreq(cap.samples.size, 1 / cap.sample_rate)
        assert freqs[np.argmax(spectrum)] == pytest.approx(2e4, abs=100)

    def test_ppm_error_shifts_tone(self):
        sdr = RtlSdrV3(sample_rate=2.4e5, ppm_error=1e4, noise_floor=1e-6)
        wave = tone_input(1.5e5, 9.6e5)
        cap = sdr.capture(wave, 9.6e5, 1.5e5, np.random.default_rng(0))
        spectrum = np.abs(np.fft.fft(cap.samples))
        freqs = np.fft.fftfreq(cap.samples.size, 1 / cap.sample_rate)
        expected_offset = -1.5e5 * 1e4 * 1e-6
        assert freqs[np.argmax(spectrum)] == pytest.approx(
            expected_offset, abs=100
        )


class TestQuantisation:
    def test_output_on_code_grid(self):
        sdr = RtlSdrV3(sample_rate=2.4e5, bits=8)
        wave = tone_input(1.5e5, 9.6e5)
        cap = sdr.capture(wave, 9.6e5, 1.5e5, np.random.default_rng(0))
        codes_i = cap.samples.real * 128
        assert np.allclose(codes_i, np.round(codes_i), atol=1e-3)

    def test_agc_normalises_weak_and_strong_inputs(self):
        sdr = RtlSdrV3(sample_rate=2.4e5, noise_floor=0.0)
        weak = tone_input(1.5e5, 9.6e5, amplitude=1e-5)
        strong = tone_input(1.5e5, 9.6e5, amplitude=10.0)
        rng = np.random.default_rng(0)
        rms_weak = np.sqrt(
            np.mean(np.abs(sdr.capture(weak, 9.6e5, 1.5e5, rng).samples) ** 2)
        )
        rms_strong = np.sqrt(
            np.mean(np.abs(sdr.capture(strong, 9.6e5, 1.5e5, rng).samples) ** 2)
        )
        assert rms_weak == pytest.approx(rms_strong, rel=0.1)

    def test_fewer_bits_raise_quantisation_noise(self):
        wave = tone_input(1.5e5, 9.6e5) + 0.3 * tone_input(1.8e5, 9.6e5)

        def residual(bits):
            sdr = RtlSdrV3(sample_rate=2.4e5, bits=bits, noise_floor=0.0,
                           ppm_error=0.0)
            cap = sdr.capture(wave, 9.6e5, 1.5e5, np.random.default_rng(0))
            ref = RtlSdrV3(sample_rate=2.4e5, bits=16, noise_floor=0.0,
                           ppm_error=0.0).capture(
                wave, 9.6e5, 1.5e5, np.random.default_rng(0)
            )
            return np.abs(cap.samples - ref.samples).mean()

        assert residual(4) > residual(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RtlSdrV3(sample_rate=0.0)
        with pytest.raises(ValueError):
            RtlSdrV3(sample_rate=1e6, bits=1)
