"""Tests for the SDR front end (mixing and decimation)."""

import numpy as np
import pytest

from repro.sdr.frontend import decimate, mix_to_baseband


class TestMixing:
    def test_tone_at_center_lands_at_dc(self):
        fs = 1e6
        t = np.arange(10000) / fs
        tone = np.cos(2 * np.pi * 1e5 * t)
        baseband = mix_to_baseband(tone, fs, 1e5)
        spectrum = np.abs(np.fft.fft(baseband))
        freqs = np.fft.fftfreq(baseband.size, 1 / fs)
        # Ignore the double-frequency mixing image; a real receiver
        # low-pass filters it out (see decimate()).
        in_band = np.abs(freqs) < 1e5
        hot = np.flatnonzero(in_band)[np.argmax(spectrum[in_band])]
        assert abs(freqs[hot]) < 200

    def test_offset_tone_lands_at_offset(self):
        fs = 1e6
        t = np.arange(10000) / fs
        tone = np.cos(2 * np.pi * 1.2e5 * t)
        baseband = mix_to_baseband(tone, fs, 1e5)
        spectrum = np.abs(np.fft.fft(baseband))
        freqs = np.fft.fftfreq(baseband.size, 1 / fs)
        in_band = np.abs(freqs) < 1e5
        hot = np.flatnonzero(in_band)[np.argmax(spectrum[in_band])]
        assert freqs[hot] == pytest.approx(2e4, abs=200)

    def test_oscillator_offset_shifts_spectrum(self):
        fs = 1e6
        t = np.arange(10000) / fs
        tone = np.cos(2 * np.pi * 1e5 * t)
        baseband = mix_to_baseband(tone, fs, 1e5, oscillator_offset_hz=5e3)
        spectrum = np.abs(np.fft.fft(baseband))
        freqs = np.fft.fftfreq(baseband.size, 1 / fs)
        in_band = np.abs(freqs) < 1e5
        hot = np.flatnonzero(in_band)[np.argmax(spectrum[in_band])]
        assert freqs[hot] == pytest.approx(-5e3, abs=200)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            mix_to_baseband(np.zeros(8), 0.0, 1e5)


class TestDecimation:
    def test_factor_one_is_identity(self):
        x = np.arange(10, dtype=complex)
        assert decimate(x, 1) is x

    def test_output_length(self):
        x = np.zeros(1000, dtype=complex)
        assert decimate(x, 4).size == 250

    def test_in_band_tone_survives(self):
        fs = 1e6
        t = np.arange(40000) / fs
        tone = np.exp(2j * np.pi * 2e4 * t)
        out = decimate(tone, 4)
        assert np.abs(out[1000:-1000]).mean() == pytest.approx(1.0, rel=0.05)

    def test_out_of_band_tone_suppressed(self):
        fs = 1e6
        t = np.arange(40000) / fs
        tone = np.exp(2j * np.pi * 2.4e5 * t)  # above new Nyquist*0.8
        out = decimate(tone, 4)
        assert np.abs(out[1000:-1000]).mean() < 0.1

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            decimate(np.zeros(8, dtype=complex), 0)
