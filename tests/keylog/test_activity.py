"""Tests for keystroke-to-activity conversion."""

import numpy as np
import pytest

from repro.keylog.activity import KeystrokeActivityModel, keystrokes_to_activity
from repro.types import Keystroke


def strokes(times, dwell=0.08):
    return [Keystroke(t, t + dwell, "x") for t in times]


class TestKeystrokeActivity:
    def test_burst_at_each_press(self):
        model = KeystrokeActivityModel(browser_burst_rate_hz=0.0)
        trace = keystrokes_to_activity(
            strokes([0.5, 1.5]), 3.0, model, np.random.default_rng(0)
        )
        covered = trace.levels_at(np.array([0.51, 1.51]))
        assert np.all(covered == 1.0)

    def test_press_burst_longer_than_detector_floor(self):
        model = KeystrokeActivityModel(browser_burst_rate_hz=0.0)
        trace = keystrokes_to_activity(
            strokes([1.0]), 3.0, model, np.random.default_rng(1)
        )
        press_burst = trace.intervals[0]
        assert press_burst.duration >= 0.030 * 0.5

    def test_release_burst_shorter_than_press(self):
        model = KeystrokeActivityModel(
            browser_burst_rate_hz=0.0, burst_jitter_rel=0.0
        )
        trace = keystrokes_to_activity(
            strokes([1.0], dwell=0.2), 3.0, model, np.random.default_rng(2)
        )
        assert len(trace.intervals) == 2
        assert trace.intervals[1].duration < trace.intervals[0].duration

    def test_browser_bursts_appear_without_keystrokes(self):
        model = KeystrokeActivityModel(browser_burst_rate_hz=20.0)
        trace = keystrokes_to_activity(
            [], 5.0, model, np.random.default_rng(3)
        )
        assert len(trace.intervals) > 10

    def test_browser_bursts_mostly_below_detector_floor(self):
        model = KeystrokeActivityModel(browser_burst_rate_hz=50.0)
        trace = keystrokes_to_activity(
            [], 20.0, model, np.random.default_rng(4)
        )
        durations = np.array([iv.duration for iv in trace.intervals])
        assert np.median(durations) < 0.03

    def test_overlapping_bursts_merge(self):
        model = KeystrokeActivityModel(browser_burst_rate_hz=0.0)
        trace = keystrokes_to_activity(
            strokes([1.0, 1.01]), 3.0, model, np.random.default_rng(5)
        )
        for a, b in zip(trace.intervals, trace.intervals[1:]):
            assert a.end <= b.start

    def test_time_scale_dilates_bursts(self):
        model = KeystrokeActivityModel(
            browser_burst_rate_hz=0.0, burst_jitter_rel=0.0
        )
        base = keystrokes_to_activity(
            strokes([1.0]), 30.0, model, np.random.default_rng(6),
            time_scale=1.0,
        )
        dilated = keystrokes_to_activity(
            strokes([1.0]), 30.0, model, np.random.default_rng(6),
            time_scale=10.0,
        )
        assert dilated.intervals[0].duration == pytest.approx(
            10 * base.intervals[0].duration
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            KeystrokeActivityModel(press_burst_s=0.0)
