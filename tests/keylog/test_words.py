"""Tests for word segmentation and word-accuracy scoring."""

import numpy as np
import pytest

from repro.keylog.detector import DetectedEvent
from repro.keylog.words import segment_words, word_accuracy


def events_for_text(text, base=0.2, boundary=0.45, seed=None):
    """Synthetic detections: regular gaps, longer around spaces."""
    rng = np.random.default_rng(seed) if seed is not None else None
    t = 0.0
    events = []
    prev = None
    for ch in text:
        if prev is not None:
            gap = boundary if (" " in (prev, ch)) else base
            if rng is not None:
                gap *= 1.0 + 0.1 * rng.standard_normal()
            t += gap
        events.append(DetectedEvent(t, t + 0.05))
        prev = ch
    return events


class TestSegmentation:
    def test_clean_sentence(self):
        seg = segment_words(events_for_text("can you hear me"))
        assert seg.word_lengths == [3, 3, 4, 2]

    def test_single_word(self):
        seg = segment_words(events_for_text("hello"))
        assert seg.word_lengths == [5]

    def test_jittered_sentence(self):
        seg = segment_words(events_for_text("the cat sat on a mat", seed=0))
        assert seg.word_lengths == [3, 3, 3, 2, 1, 3]

    def test_empty_events(self):
        seg = segment_words([])
        assert seg.word_lengths == []

    def test_single_event(self):
        seg = segment_words([DetectedEvent(0.0, 0.05)])
        assert seg.word_lengths == [1]

    def test_boundary_gaps_reported(self):
        seg = segment_words(events_for_text("ab cd"))
        assert seg.boundary_gaps.size >= 1
        assert seg.gap_threshold > 0


class TestWordAccuracy:
    def test_perfect_match(self):
        p, r = word_accuracy([3, 4, 2], [3, 4, 2])
        assert p == 1.0
        assert r == 1.0

    def test_wrong_length_hurts_precision_not_recall(self):
        p, r = word_accuracy([3, 5, 2], [3, 4, 2])
        assert p == pytest.approx(2 / 3)
        assert r == 1.0

    def test_missing_word_hurts_recall(self):
        p, r = word_accuracy([3, 2], [3, 4, 2])
        assert r == pytest.approx(2 / 3)
        assert p == 1.0

    def test_extra_word_hurts_precision(self):
        p, r = word_accuracy([3, 9, 4, 2], [3, 4, 2])
        assert p == pytest.approx(3 / 4)
        assert r == 1.0

    def test_empty_prediction(self):
        assert word_accuracy([], [3, 4]) == (0.0, 0.0)
