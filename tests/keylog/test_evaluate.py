"""Tests for the keylogging evaluation harness."""

import pytest

from repro.keylog.evaluate import KeylogExperiment


@pytest.fixture(scope="module")
def result():
    return KeylogExperiment(seed=4).run(n_words=12)


class TestKeylogExperiment:
    def test_scores_in_valid_ranges(self, result):
        assert 0.0 <= result.true_positive_rate <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert 0.0 <= result.word_precision <= 1.0
        assert 0.0 <= result.word_recall <= 1.0

    def test_near_field_detection_is_accurate(self, result):
        assert result.true_positive_rate > 0.85
        assert result.false_positive_rate < 0.15

    def test_counts_consistent(self, result):
        assert result.n_detected == result.detection.count
        assert result.n_keystrokes > 0

    def test_row_serialisation(self, result):
        row = result.row()
        assert set(row) == {
            "label",
            "TPR",
            "FPR",
            "word_precision",
            "word_recall",
        }

    def test_explicit_text_fixes_keystroke_count(self):
        res = KeylogExperiment(seed=5).run(text="abc def")
        assert res.n_keystrokes == 7

    def test_deterministic_given_seed(self):
        a = KeylogExperiment(seed=6).run(text="same text")
        b = KeylogExperiment(seed=6).run(text="same text")
        assert a.true_positive_rate == b.true_positive_rate
        assert a.n_detected == b.n_detected
