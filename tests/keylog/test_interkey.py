"""Tests for inter-key timing analysis."""

import numpy as np
import pytest

from repro.keylog.detector import DetectedEvent
from repro.keylog.interkey import (
    IntervalProfile,
    analyze_timing,
    dictionary_reduction_factor,
    intervals_from_events,
)


def events_with_intervals(intervals, start=0.0):
    t = start
    events = [DetectedEvent(t, t + 0.04)]
    for gap in intervals:
        t += gap
        events.append(DetectedEvent(t, t + 0.04))
    return events


class TestIntervalProfile:
    def test_terciles_classify_extremes(self):
        rng = np.random.default_rng(0)
        intervals = rng.normal(0.2, 0.05, 300)
        profile = IntervalProfile.from_intervals(intervals)
        assert profile.classify(0.05) == "fast"
        assert profile.classify(0.5) == "slow"
        assert profile.classify(profile.median) == "medium"

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            IntervalProfile.from_intervals(np.array([0.1, 0.2]))


class TestIntervalsFromEvents:
    def test_start_to_start(self):
        events = events_with_intervals([0.2, 0.3])
        assert intervals_from_events(events) == pytest.approx([0.2, 0.3])

    def test_single_event(self):
        assert intervals_from_events([DetectedEvent(0, 0.04)]).size == 0


class TestAnalyzeTiming:
    def test_classes_cover_all_intervals(self):
        rng = np.random.default_rng(1)
        events = events_with_intervals(rng.uniform(0.1, 0.4, 30))
        analysis = analyze_timing(events)
        assert analysis.n_intervals == 30
        assert set(analysis.classes) <= {"fast", "medium", "slow"}

    def test_reduction_is_positive_bits(self):
        rng = np.random.default_rng(2)
        events = events_with_intervals(rng.uniform(0.1, 0.4, 30))
        analysis = analyze_timing(events)
        assert analysis.search_space_reduction_bits > 0.5

    def test_needs_minimum_events(self):
        with pytest.raises(ValueError):
            analyze_timing(events_with_intervals([0.2]))

    def test_custom_fractions_change_reduction(self):
        rng = np.random.default_rng(3)
        events = events_with_intervals(rng.uniform(0.1, 0.4, 30))
        loose = analyze_timing(
            events, {"fast": 0.9, "medium": 0.9, "slow": 0.9}
        )
        tight = analyze_timing(
            events, {"fast": 0.1, "medium": 0.1, "slow": 0.1}
        )
        assert tight.search_space_reduction_bits > (
            loose.search_space_reduction_bits
        )


class TestDictionaryReduction:
    def test_grows_with_word_length(self):
        rng = np.random.default_rng(4)
        events = events_with_intervals(rng.uniform(0.1, 0.4, 30))
        analysis = analyze_timing(events)
        assert dictionary_reduction_factor(
            analysis, 8
        ) > dictionary_reduction_factor(analysis, 4)

    def test_single_letter_word_unconstrained(self):
        rng = np.random.default_rng(5)
        events = events_with_intervals(rng.uniform(0.1, 0.4, 30))
        analysis = analyze_timing(events)
        assert dictionary_reduction_factor(analysis, 1) == 1.0


class TestOnRealDetections:
    def test_timing_leaks_from_real_capture(self, keylog_artifacts):
        keystrokes, capture, exp = keylog_artifacts
        from repro.keylog.detector import KeystrokeDetector

        detector = KeystrokeDetector(
            exp.machine.vrm_frequency_hz / exp.profile.total_freq_divisor
        )
        events = detector.detect(capture).events
        analysis = analyze_timing(events)
        # Several bits of search-space reduction per digraph, which is
        # the Section V-B point: timing alone meaningfully narrows a
        # dictionary attack.
        assert analysis.search_space_reduction_bits > 1.0
