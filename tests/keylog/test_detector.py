"""Tests for the keystroke detector."""

import pytest

from repro.keylog.detector import (
    DetectedEvent,
    KeylogDetectorConfig,
    KeystrokeDetector,
    match_events,
)
from repro.types import Keystroke


class TestDetectorOnCapture:
    def test_detects_most_keystrokes(self, keylog_artifacts):
        keystrokes, capture, exp = keylog_artifacts
        detector = KeystrokeDetector(
            exp.machine.vrm_frequency_hz / exp.profile.total_freq_divisor,
            exp.detector_config,
        )
        detection = detector.detect(capture)
        tp, fp, fn = match_events(detection.events, keystrokes)
        assert tp / len(keystrokes) > 0.85
        assert fp <= 3

    def test_events_sorted_and_long_enough(self, keylog_artifacts):
        keystrokes, capture, exp = keylog_artifacts
        detector = KeystrokeDetector(
            exp.machine.vrm_frequency_hz / exp.profile.total_freq_divisor
        )
        detection = detector.detect(capture)
        for a, b in zip(detection.events, detection.events[1:]):
            assert a.end <= b.start
        assert all(
            ev.duration >= detector.config.min_event_s
            for ev in detection.events
        )

    def test_threshold_inside_energy_range(self, keylog_artifacts):
        keystrokes, capture, exp = keylog_artifacts
        detector = KeystrokeDetector(
            exp.machine.vrm_frequency_hz / exp.profile.total_freq_divisor
        )
        detection = detector.detect(capture)
        assert (
            detection.band_energy.min()
            < detection.threshold
            < detection.band_energy.max()
        )

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            KeystrokeDetector(0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            KeylogDetectorConfig(window_s=0.0)


class TestMatchEvents:
    def test_exact_matches(self):
        truth = [Keystroke(1.0, 1.1, "a"), Keystroke(2.0, 2.1, "b")]
        detected = [DetectedEvent(0.98, 1.15), DetectedEvent(1.99, 2.2)]
        assert match_events(detected, truth) == (2, 0, 0)

    def test_false_positive_counted(self):
        truth = [Keystroke(1.0, 1.1, "a")]
        detected = [DetectedEvent(0.98, 1.15), DetectedEvent(5.0, 5.1)]
        assert match_events(detected, truth) == (1, 1, 0)

    def test_missed_keystroke_counted(self):
        truth = [Keystroke(1.0, 1.1, "a"), Keystroke(2.0, 2.1, "b")]
        detected = [DetectedEvent(0.98, 1.15)]
        assert match_events(detected, truth) == (1, 0, 1)

    def test_one_event_matches_only_one_keystroke(self):
        truth = [Keystroke(1.0, 1.1, "a"), Keystroke(1.05, 1.15, "b")]
        detected = [DetectedEvent(0.98, 1.2)]
        tp, fp, fn = match_events(detected, truth)
        assert tp == 1
        assert fn == 1

    def test_tolerance_window(self):
        truth = [Keystroke(1.0, 1.1, "a")]
        detected = [DetectedEvent(1.03, 1.2)]
        assert match_events(detected, truth, tolerance_s=0.06)[0] == 1
        assert match_events(detected, truth, tolerance_s=0.001)[0] == 0
