"""Tests for the typing model and its Salthouse effects."""

import numpy as np
import pytest

from repro.keylog.typing_model import (
    TypingModel,
    TypistProfile,
    key_distance,
    random_words,
)


@pytest.fixture
def model():
    return TypingModel(rng=np.random.default_rng(0))


class TestKeyDistance:
    def test_adjacent_keys_close(self):
        assert key_distance("a", "s") < key_distance("a", "p")

    def test_symmetry(self):
        assert key_distance("q", "m") == key_distance("m", "q")

    def test_unknown_key_gets_default(self):
        assert key_distance("a", "@") == pytest.approx(3.0)


class TestSalthouseEffects:
    def _mean_interval(self, prev, key, n=300, **profile_kwargs):
        profile = TypistProfile(interval_jitter_rel=0.0, **profile_kwargs)
        model = TypingModel(profile, rng=np.random.default_rng(1))
        return np.mean(
            [model.interval_for(prev, key, keys_typed=0) for _ in range(n)]
        )

    def test_far_keys_faster_than_near(self):
        # Effect (i): distant pairs (alternating hands) are quicker.
        near = self._mean_interval("f", "g")
        far = self._mean_interval("f", "p")
        assert far < near

    def test_frequent_digraph_faster(self):
        # Effect (ii): "th" beats a rare pair at similar distance.
        frequent = self._mean_interval("t", "h")
        rare = self._mean_interval("t", "j")
        assert frequent < rare

    def test_practice_shortens_intervals(self):
        # Effect (iii): later keystrokes are quicker.
        profile = TypistProfile(interval_jitter_rel=0.0)
        model = TypingModel(profile, rng=np.random.default_rng(2))
        early = model.interval_for("a", "k", keys_typed=0)
        late = model.interval_for("a", "k", keys_typed=10_000)
        assert late < early

    def test_word_boundary_pause(self):
        within = self._mean_interval("a", "b")
        boundary = self._mean_interval("a", " ")
        assert boundary > 1.5 * within


class TestTypeText:
    def test_one_keystroke_per_character(self, model):
        events = model.type_text("hello world")
        assert len(events) == 11
        assert [e.key for e in events] == list("hello world")

    def test_monotone_press_times(self, model):
        events = model.type_text("the quick brown fox")
        presses = [e.press_time for e in events]
        assert presses == sorted(presses)

    def test_minimum_inter_key_gap(self, model):
        events = model.type_text("a" * 50)
        gaps = np.diff([e.press_time for e in events])
        assert gaps.min() >= 0.085 - 1e-9

    def test_dwell_times_positive(self, model):
        events = model.type_text("abcdef")
        assert all(e.dwell >= 0.02 for e in events)

    def test_empty_text(self, model):
        assert model.type_text("") == []

    def test_start_time_offsets_first_press(self, model):
        events = model.type_text("ab", start_time=5.0)
        assert events[0].press_time == pytest.approx(5.0)


class TestRandomWords:
    def test_word_count(self):
        text = random_words(25, np.random.default_rng(3))
        assert len(text.split(" ")) == 25

    def test_mean_length_near_english(self):
        text = random_words(400, np.random.default_rng(4))
        lengths = [len(w) for w in text.split(" ")]
        assert np.mean(lengths) == pytest.approx(4.7, abs=1.0)

    def test_lowercase_letters_only(self):
        text = random_words(10, np.random.default_rng(5))
        assert all(c.islower() or c == " " for c in text)

    def test_rejects_zero_words(self):
        with pytest.raises(ValueError):
            random_words(0)
