"""Shared chunk pool: slab accounting, overflow policies, edge cases."""

import numpy as np
import pytest

from repro.mux.pool import ChunkPool
from repro.stream.ring import BufferFull
from repro.stream.source import Chunk


def _chunk(index, size=16, start=None, seed=None):
    rng = np.random.default_rng(index if seed is None else seed)
    samples = (
        rng.normal(size=size) + 1j * rng.normal(size=size)
    ).astype(np.complex64)
    return Chunk(
        samples=samples,
        start_sample=index * size if start is None else start,
        index=index,
        arrival_s=index * 0.01,
    )


class TestPoolBasics:
    def test_rejects_bad_sizing(self):
        with pytest.raises(ValueError):
            ChunkPool(0, 16)
        with pytest.raises(ValueError):
            ChunkPool(4, 0)

    def test_arena_is_one_allocation(self):
        pool = ChunkPool(8, 32)
        assert pool.nbytes == 8 * 32 * np.dtype(np.complex64).itemsize
        assert pool.in_use == 0

    def test_push_pop_roundtrip_via_slab(self):
        pool = ChunkPool(4, 16)
        queue = pool.register("a", capacity=4)
        chunk = _chunk(0)
        assert queue.push(chunk) == []
        assert pool.in_use == 1
        pooled = queue.pop()
        np.testing.assert_array_equal(pooled.samples, chunk.samples)
        # the view is arena-backed, not the source array
        assert pooled.samples.base is not None
        assert pooled.samples.base is not chunk.samples
        pool.release(pooled)
        assert pool.in_use == 0

    def test_release_is_idempotent(self):
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=2)
        queue.push(_chunk(0))
        pooled = queue.pop()
        pool.release(pooled)
        pool.release(pooled)  # slab already returned: no double-free
        assert pool.in_use == 0
        assert len(pool._free) == 2

    def test_duplicate_stream_id_rejected(self):
        pool = ChunkPool(2, 16)
        pool.register("a", capacity=1)
        with pytest.raises(ValueError):
            pool.register("a", capacity=1)

    def test_oversized_chunk_rejected_and_slab_recovered(self):
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=2)
        with pytest.raises(ValueError):
            queue.push(_chunk(0, size=17))
        assert pool.in_use == 0  # the acquired slab went back

    def test_chunk_exactly_slab_sized(self):
        # slab boundary: a chunk that fills its slab to the last sample
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=2)
        chunk = _chunk(0, size=16)
        assert queue.push(chunk) == []
        pooled = queue.pop()
        assert pooled.size == 16
        np.testing.assert_array_equal(pooled.samples, chunk.samples)

    def test_slab_recycling_never_aliases(self):
        # LIFO recycle: pop + release, then a different stream's push
        # must land in the recycled slab without corrupting new data
        pool = ChunkPool(1, 16)
        qa = pool.register("a", capacity=1)
        qb = pool.register("b", capacity=1)
        first = _chunk(0, seed=1)
        qa.push(first)
        pooled = qa.pop()
        kept = np.array(pooled.samples)  # copy out, then release
        pool.release(pooled)
        second = _chunk(1, seed=2)
        qb.push(second)
        got = qb.pop()
        np.testing.assert_array_equal(got.samples, second.samples)
        np.testing.assert_array_equal(kept, first.samples)


class TestDropOldest:
    def test_eviction_at_capacity(self):
        pool = ChunkPool(4, 16)
        queue = pool.register("a", capacity=2)
        c0, c1, c2 = _chunk(0), _chunk(1), _chunk(2)
        assert queue.push(c0) == []
        assert queue.push(c1) == []
        dropped = queue.push(c2)
        assert [d.index for d in dropped] == [0]  # own oldest evicted
        assert queue.dropped_chunks == 1
        assert queue.dropped_samples == c0.size
        assert [queue.pop().index for _ in range(2)] == [1, 2]

    def test_evicted_slab_is_released(self):
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=1)
        queue.push(_chunk(0))
        (victim,) = queue.push(_chunk(1))
        assert victim.slab == -1  # released on eviction
        assert pool.in_use == 1  # only the admitted chunk holds a slab

    def test_pool_exhaustion_evicts_own_oldest(self):
        # 2 slabs, two streams with headroom: stream a hoards both
        # slabs, then a third push to a recycles a's own oldest
        pool = ChunkPool(2, 16)
        qa = pool.register("a", capacity=8)
        pool.register("b", capacity=8)
        qa.push(_chunk(0))
        qa.push(_chunk(1))
        dropped = qa.push(_chunk(2))
        assert [d.index for d in dropped] == [0]
        assert [c.index for c in qa._items] == [1, 2]

    def test_pool_exhaustion_with_empty_queue_rejects_incoming(self):
        pool = ChunkPool(1, 16)
        qa = pool.register("a", capacity=8)
        qb = pool.register("b", capacity=8)
        qa.push(_chunk(0))  # hoards the only slab
        incoming = _chunk(5)
        dropped = qb.push(incoming)
        assert [d.index for d in dropped] == [5]  # the rejected chunk
        assert dropped[0].slab == -1
        assert len(qb) == 0
        assert qb.dropped_chunks == 1
        pool.release(dropped[0])  # releasing a rejected chunk: no-op
        assert pool.in_use == 1


class TestZeroCapacity:
    def test_every_chunk_dropped_and_accounted(self):
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=0)
        total = 0
        for i in range(5):
            chunk = _chunk(i)
            (dropped,) = queue.push(chunk)
            assert dropped.index == i and dropped.slab == -1
            total += chunk.size
        assert queue.pushed == 5
        assert queue.dropped_chunks == 5
        assert queue.dropped_samples == total
        assert len(queue) == 0
        assert pool.in_use == 0
        assert queue.occupancy == 1.0  # always full by definition

    def test_block_policy_raises(self):
        pool = ChunkPool(2, 16)
        queue = pool.register("a", capacity=0, policy="block")
        with pytest.raises(BufferFull):
            queue.push(_chunk(0))

    def test_negative_capacity_rejected(self):
        pool = ChunkPool(2, 16)
        with pytest.raises(ValueError):
            pool.register("a", capacity=-1)


class TestBlockPolicy:
    def test_full_queue_raises(self):
        pool = ChunkPool(4, 16)
        queue = pool.register("a", capacity=1, policy="block")
        queue.push(_chunk(0))
        with pytest.raises(BufferFull):
            queue.push(_chunk(1))

    def test_pool_exhaustion_raises(self):
        pool = ChunkPool(1, 16)
        pool.register("hog", capacity=4).push(_chunk(0))
        queue = pool.register("a", capacity=4, policy="block")
        with pytest.raises(BufferFull):
            queue.push(_chunk(1))


class TestWatermarks:
    def test_queue_and_pool_high_watermarks(self):
        pool = ChunkPool(4, 16)
        queue = pool.register("a", capacity=4)
        for i in range(3):
            queue.push(_chunk(i))
        assert queue.high_watermark == 3
        assert pool.high_watermark == 3
        for _ in range(3):
            pool.release(queue.pop())
        assert pool.in_use == 0
        assert pool.high_watermark == 3  # watermark is sticky
        assert queue.buffered_samples == 0
