"""Shared fixtures for the fleet-multiplexer tests.

Synthetic noise captures stand in for rendered scenarios everywhere the
property under test is scheduling or DSP equivalence - rendering real
scenario captures is reserved for ``test_fleet.py``.
"""

import numpy as np
import pytest

from repro.mux.pool import ChunkPool
from repro.mux.scheduler import StreamMultiplexer
from repro.stream import CaptureChunkSource, StreamingReceiver
from repro.types import IQCapture

SAMPLE_RATE = 24_000.0
VRM_HZ = 5_000.0


def make_capture(n_samples, seed=0, sample_rate=SAMPLE_RATE):
    rng = np.random.default_rng(seed)
    samples = (
        rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
    ).astype(np.complex64)
    return IQCapture(
        samples=samples, sample_rate=sample_rate, center_frequency=0.0
    )


def make_source(capture, chunk_size, jitter_rel=0.0, jitter_seed=0):
    return CaptureChunkSource(
        capture,
        chunk_size,
        jitter_rel=jitter_rel,
        rng=np.random.default_rng(jitter_seed),
    )


def make_receiver(source, online=False, vrm_hz=VRM_HZ):
    return StreamingReceiver(source.meta, vrm_hz, online=online)


def make_mux(
    captures,
    chunk_size=256,
    tick_chunks=4,
    n_slabs=None,
    shed_hook=None,
    **stream_kwargs,
):
    """One mux over synthetic captures, one stream per capture."""
    tick_s = tick_chunks * chunk_size / SAMPLE_RATE
    capacity = stream_kwargs.get("capacity", 2 * tick_chunks)
    if n_slabs is None:
        n_slabs = max(1, capacity * len(captures))
    pool = ChunkPool(n_slabs, chunk_size)
    mux = StreamMultiplexer(pool, tick_s=tick_s, shed_hook=shed_hook)
    for i, capture in enumerate(captures):
        source = make_source(capture, chunk_size, jitter_seed=i)
        kwargs = {"capacity": capacity, **stream_kwargs}
        mux.add_stream(
            f"s{i:03d}", source, make_receiver(source), **kwargs
        )
    return mux


@pytest.fixture
def capture():
    return make_capture(8_192)
