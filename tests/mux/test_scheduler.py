"""Scheduler semantics: conservation, priorities, budgets, backpressure."""

import numpy as np
import pytest

from repro.mux.pool import ChunkPool
from repro.mux.scheduler import StreamMultiplexer

from .conftest import (
    SAMPLE_RATE,
    make_capture,
    make_mux,
    make_receiver,
    make_source,
)


def _final_bits(mux, stream_id):
    return mux.state(stream_id).mux.receiver.finalize().bits


class TestLosslessRuns:
    def test_everything_delivered_and_conserved(self):
        mux = make_mux([make_capture(8_192, seed=s) for s in range(3)])
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["produced_chunks"] == totals["delivered_chunks"] > 0
        assert totals["dropped_chunks"] == 0
        assert totals["shed_chunks"] == 0
        assert mux.shed_fraction() == 0.0
        assert mux.done

    def test_fast_path_never_touches_the_pool(self):
        # no service cap, queues never back up: every chunk takes the
        # zero-queue fast path, so no slab is ever acquired
        mux = make_mux([make_capture(8_192, seed=s) for s in range(2)])
        mux.run()
        assert mux.pool.high_watermark == 0
        assert mux.totals()["delivered_chunks"] > 0

    def test_deterministic_across_runs(self):
        def build():
            return make_mux([make_capture(8_192, seed=s) for s in range(2)])

        a, b = build(), build()
        assert a.run() == b.run()
        assert a.totals() == b.totals()
        for sid in a.stream_ids:
            np.testing.assert_array_equal(
                _final_bits(a, sid), _final_bits(b, sid)
            )

    def test_max_ticks_pauses_then_resumes(self):
        mux = make_mux([make_capture(8_192)])
        ran = mux.run(max_ticks=2)
        assert ran == 2 and not mux.done
        mux.check_conservation()  # invariant holds mid-run too
        mux.run()
        assert mux.done
        mux.check_conservation()


class TestBudgets:
    def test_slow_service_rate_sheds_under_drop_oldest(self):
        mux = make_mux(
            [make_capture(16_384)],
            capacity=4,
            service_rate_sps=SAMPLE_RATE * 0.25,
        )
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["dropped_chunks"] > 0
        assert 0.0 < mux.shed_fraction() < 1.0
        assert mux.pool.high_watermark > 0  # budgeted streams use slabs

    def test_debt_only_carry_never_bursts(self):
        # budget of ~half a chunk per tick: the overdraft admits one
        # chunk, the debt is repaid, so delivery alternates rather than
        # bursting - and the whole (small) queue still drains
        mux = make_mux(
            [make_capture(4_096)],
            capacity=64,
            service_rate_sps=SAMPLE_RATE * 0.125,
        )
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["delivered_chunks"] == totals["produced_chunks"]
        state = mux.state("s000")
        assert state.carry <= 0.0

    def test_priority_orders_service(self):
        order = []

        def spy(stream_id, chunk):
            order.append(stream_id)
            return False

        captures = [make_capture(4_096, seed=s) for s in range(2)]
        tick_s = 4 * 256 / SAMPLE_RATE
        pool = ChunkPool(16, 256)
        mux = StreamMultiplexer(pool, tick_s=tick_s, shed_hook=spy)
        for i, (capture, priority) in enumerate(
            zip(captures, (5, 1))  # registration order != priority order
        ):
            source = make_source(capture, 256, jitter_seed=i)
            mux.add_stream(
                f"s{i}",
                source,
                make_receiver(source),
                capacity=8,
                priority=priority,
                service_rate_sps=SAMPLE_RATE,
            )
        mux.run()
        assert order[0] == "s1"  # lower priority value served first
        first_pass = order[: 2 * 4]
        assert first_pass.count("s1") == first_pass.count("s0")  # round-robin


class TestShedding:
    def test_shed_hook_vetoes_and_accounts(self):
        count = 0

        def every_third(stream_id, chunk):
            nonlocal count
            count += 1
            return count % 3 == 0

        mux = make_mux([make_capture(8_192)], shed_hook=every_third)
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["shed_chunks"] > 0
        assert (
            totals["produced_chunks"]
            == totals["delivered_chunks"] + totals["shed_chunks"]
        )

    def test_shed_gaps_are_zero_filled(self):
        def every_other(stream_id, chunk):
            return chunk.index % 2 == 1

        mux = make_mux([make_capture(8_192)], shed_hook=every_other)
        mux.run()
        state = mux.state("s000")
        # the receiver's time base is contiguous: delivered + zeros
        assert state.counters.gap_samples > 0
        sstft = state.mux.sstft
        assert sstft.n_samples == (
            state.counters.delivered_samples + state.counters.gap_samples
        )


class TestBlockPolicy:
    def test_backpressure_holds_chunks_at_the_source(self):
        # tiny queue + slow budget under block policy: nothing is ever
        # dropped, the source just waits
        mux = make_mux(
            [make_capture(8_192)],
            capacity=2,
            policy="block",
            service_rate_sps=SAMPLE_RATE * 0.5,
        )
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["dropped_chunks"] == 0
        assert totals["delivered_chunks"] == totals["produced_chunks"] > 0

    def test_block_streams_share_an_undersized_pool(self):
        captures = [make_capture(4_096, seed=s) for s in range(3)]
        tick_s = 4 * 256 / SAMPLE_RATE
        pool = ChunkPool(3, 256)  # 1 slab per stream
        mux = StreamMultiplexer(pool, tick_s=tick_s)
        for i, capture in enumerate(captures):
            source = make_source(capture, 256, jitter_seed=i)
            mux.add_stream(
                f"s{i}",
                source,
                make_receiver(source),
                capacity=2,
                policy="block",
                service_rate_sps=SAMPLE_RATE * 0.5,
            )
        mux.run()
        mux.check_conservation()
        assert mux.totals()["dropped_chunks"] == 0
        assert mux.done


class TestZeroCapacityStream:
    def test_registered_but_starved(self):
        mux = make_mux([make_capture(4_096)], capacity=0)
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["dropped_chunks"] == totals["produced_chunks"] > 0
        assert totals["delivered_chunks"] == 0
        state = mux.state("s000")
        assert state.mux.sstft.n_samples == 0
        assert mux.done


class TestRegistration:
    def test_duplicate_id_rejected(self, capture):
        mux = make_mux([capture])
        source = make_source(capture, 256)
        with pytest.raises(ValueError):
            mux.add_stream("s000", source, make_receiver(source))

    def test_bad_tick_rejected(self):
        with pytest.raises(ValueError):
            StreamMultiplexer(ChunkPool(1, 16), tick_s=0.0)
