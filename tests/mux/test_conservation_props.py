"""Property test: the chunk/sample ledger balances under any abuse.

Hypothesis drives random fleets through random shed hooks, queue
capacities, and service budgets; after every run each stream's ledger
must classify every produced chunk as exactly one of delivered, shed,
dropped, or still buffered - in chunks and in samples - and a finished
run must leave nothing buffered.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mux.pool import ChunkPool
from repro.mux.scheduler import StreamMultiplexer

from .conftest import SAMPLE_RATE, make_capture, make_receiver, make_source

CHUNK = 128


@st.composite
def fleet_configs(draw):
    n_streams = draw(st.integers(1, 3))
    streams = []
    for _ in range(n_streams):
        streams.append(
            {
                "n_samples": draw(st.integers(300, 3_000)),
                "capacity": draw(st.integers(0, 6)),
                "rate_factor": draw(
                    st.one_of(st.none(), st.floats(0.2, 2.0))
                ),
                "jitter": draw(st.sampled_from([0.0, 0.1, 0.4])),
            }
        )
    return {
        "streams": streams,
        "n_slabs": draw(st.integers(1, 12)),
        "tick_chunks": draw(st.integers(1, 6)),
        "shed_mod": draw(st.integers(0, 4)),  # 0 = no shedding
        "seed": draw(st.integers(0, 2**16)),
    }


@given(fleet_configs())
@settings(deadline=None, max_examples=30)
def test_per_stream_conservation_under_random_injection(config):
    count = 0

    def shed_hook(stream_id, chunk):
        nonlocal count
        count += 1
        mod = config["shed_mod"]
        return mod > 0 and count % (mod + 1) == 0

    tick_s = config["tick_chunks"] * CHUNK / SAMPLE_RATE
    pool = ChunkPool(config["n_slabs"], CHUNK)
    mux = StreamMultiplexer(
        pool,
        tick_s=tick_s,
        shed_hook=shed_hook if config["shed_mod"] else None,
    )
    rng = np.random.default_rng(config["seed"])
    for i, scfg in enumerate(config["streams"]):
        capture = make_capture(
            scfg["n_samples"], seed=int(rng.integers(0, 2**31))
        )
        source = make_source(
            capture,
            CHUNK,
            jitter_rel=scfg["jitter"],
            jitter_seed=int(rng.integers(0, 2**31)),
        )
        rate = scfg["rate_factor"]
        mux.add_stream(
            f"s{i}",
            source,
            make_receiver(source),
            capacity=scfg["capacity"],
            service_rate_sps=None if rate is None else rate * SAMPLE_RATE,
        )

    mux.run()

    mux.check_conservation()  # chunks AND samples, per stream
    assert mux.done
    for sid in mux.stream_ids:
        c = mux.state(sid).counters
        queue = mux.state(sid).queue
        assert len(queue) == 0  # a finished run leaves nothing buffered
        assert c.produced_chunks == (
            c.delivered_chunks + c.shed_chunks + c.dropped_chunks
        )
        assert c.produced_samples == (
            c.delivered_samples + c.shed_samples + c.dropped_samples
        )
        # the receiver's sample timeline is delivered + synthetic zeros
        assert mux.state(sid).mux.sstft.n_samples == (
            c.delivered_samples + c.gap_samples
        )
    # every slab went home
    assert pool.in_use == 0
    assert 0.0 <= mux.shed_fraction() <= 1.0
