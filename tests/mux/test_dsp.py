"""Batched cross-stream DSP: grouping and bit-identity with per-stream.

The load-bearing claim: ``tick_group`` stacking many streams' staged
frames through one windowed FFT produces, per stream, the exact
envelope a lone receiver's ``push_samples`` would - for any stream mix,
any tick chunking, and any FFT row-block layout.
"""

import numpy as np
import pytest

import repro.mux.dsp as dsp
from repro.mux.dsp import MuxStream, group_streams, tick_group

from .conftest import make_capture, make_receiver, make_source


def _per_stream_reference(capture, pieces, online=False, vrm_hz=5_000.0):
    source = make_source(capture, 256)
    receiver = make_receiver(source, online=online, vrm_hz=vrm_hz)
    now = 0.0
    events = []
    for piece in pieces:
        now += 0.01
        events.extend(receiver.push_samples(piece, now))
    return receiver, events


def _split(samples, sizes):
    out, pos, i = [], 0, 0
    while pos < samples.size:
        n = sizes[i % len(sizes)]
        out.append(samples[pos : pos + n])
        pos += n
        i += 1
    return out


class TestGrouping:
    def test_same_config_same_group(self, capture):
        streams = []
        for i, vrm in enumerate((4_000.0, 5_000.0, 6_000.0)):
            source = make_source(capture, 256)
            streams.append(
                MuxStream(f"s{i}", make_receiver(source, vrm_hz=vrm))
            )
        groups = group_streams(streams)
        # different tuned bins, same STFT shape: one shared kernel
        assert len(groups) == 1
        (members,) = groups.values()
        assert members == streams

    def test_different_sample_rate_splits_group(self):
        a = make_capture(4_096, sample_rate=24_000.0)
        b = make_capture(4_096, sample_rate=48_000.0)
        streams = []
        for i, capture in enumerate((a, b)):
            source = make_source(capture, 256)
            streams.append(MuxStream(f"s{i}", make_receiver(source)))
        assert len(group_streams(streams)) == 2


class TestBitIdentity:
    @pytest.mark.parametrize("tick_sizes", [[1024], [256, 512, 2048], [97]])
    def test_matches_per_stream_for_any_tick_chunking(
        self, capture, tick_sizes
    ):
        pieces = _split(capture.samples, tick_sizes)
        reference, _ = _per_stream_reference(capture, pieces)

        source = make_source(capture, 256)
        receiver = make_receiver(source)
        ms = MuxStream("s0", receiver)
        now = 0.0
        for piece in pieces:
            now += 0.01
            ms.buffer(piece)
            tick_group([ms], now)

        np.testing.assert_array_equal(
            receiver.envelope().samples, reference.envelope().samples
        )
        np.testing.assert_array_equal(
            receiver.finalize().bits, reference.finalize().bits
        )

    def test_many_streams_share_one_kernel(self):
        captures = [make_capture(6_000, seed=s) for s in range(5)]
        vrms = (4_000.0, 5_000.0, 5_500.0, 6_000.0, 5_000.0)
        references = [
            _per_stream_reference(c, _split(c.samples, [700]), vrm_hz=v)[0]
            for c, v in zip(captures, vrms)
        ]

        streams = []
        for i, (c, v) in enumerate(zip(captures, vrms)):
            source = make_source(c, 256)
            streams.append(MuxStream(f"s{i}", make_receiver(source, vrm_hz=v)))
        assert len(group_streams(streams)) == 1
        pieces = [_split(c.samples, [700]) for c in captures]
        for round_ in range(max(len(p) for p in pieces)):
            for ms, stream_pieces in zip(streams, pieces):
                if round_ < len(stream_pieces):
                    ms.buffer(stream_pieces[round_])
            tick_group(streams, 0.01 * (round_ + 1))

        for ms, reference in zip(streams, references):
            np.testing.assert_array_equal(
                ms.receiver.envelope().samples,
                reference.envelope().samples,
            )

    def test_block_layout_is_unobservable(self, capture, monkeypatch):
        # Force tiny FFT blocks so streams straddle block boundaries;
        # rows are independent, so the outputs cannot change.
        reference, _ = _per_stream_reference(
            capture, _split(capture.samples, [1024])
        )
        monkeypatch.setattr(
            dsp, "CHUNK_BYTES", 3 * 256 * 16
        )  # 3 rows per block
        source = make_source(capture, 256)
        receiver = make_receiver(source)
        ms = MuxStream("s0", receiver)
        for i, piece in enumerate(_split(capture.samples, [1024])):
            ms.buffer(piece)
            tick_group([ms], 0.01 * (i + 1))
        np.testing.assert_array_equal(
            receiver.envelope().samples, reference.envelope().samples
        )

    def test_online_events_match_per_stream(self, capture):
        # online receivers get their provisional events from the
        # batched envelope path too
        pieces = _split(capture.samples, [2048])
        reference, ref_events = _per_stream_reference(
            capture, pieces, online=True
        )
        source = make_source(capture, 256)
        receiver = make_receiver(source, online=True)
        ms = MuxStream("s0", receiver)
        events = []
        now = 0.0
        for piece in pieces:
            now += 0.01
            ms.buffer(piece)
            for _, evs in tick_group([ms], now):
                events.extend(evs)
        assert len(events) == len(ref_events)
        np.testing.assert_array_equal(
            receiver.envelope().samples, reference.envelope().samples
        )

    def test_deferred_and_online_finalize_identically(self, capture):
        pieces = _split(capture.samples, [1536])
        online, _ = _per_stream_reference(capture, pieces, online=True)
        deferred, _ = _per_stream_reference(capture, pieces, online=False)
        np.testing.assert_array_equal(
            deferred.finalize().bits, online.finalize().bits
        )


class TestMuxStream:
    def test_take_pending_concatenates_in_order(self, capture):
        source = make_source(capture, 256)
        ms = MuxStream("s0", make_receiver(source))
        a, b = capture.samples[:100], capture.samples[100:300]
        ms.buffer(a)
        ms.buffer(b)
        assert ms.pending_samples == 300
        got = ms.take_pending()
        np.testing.assert_array_equal(got, capture.samples[:300])
        assert ms.pending_samples == 0
        assert ms.take_pending() is None

    def test_empty_buffer_is_ignored(self, capture):
        source = make_source(capture, 256)
        ms = MuxStream("s0", make_receiver(source))
        ms.buffer(capture.samples[:0])
        assert ms.pending_samples == 0
        assert tick_group([ms], 0.0) == []
