"""Interactive fleet control: pause/step/inspect/poke, asyncio gating."""

import asyncio

import numpy as np
import pytest

from repro.mux.interactive import InteractiveMux

from .conftest import SAMPLE_RATE, make_capture, make_mux


@pytest.fixture
def fleet():
    mux = make_mux([make_capture(8_192, seed=s) for s in range(2)])
    return InteractiveMux(mux)


class TestStepping:
    def test_step_runs_exactly_n_ticks(self, fleet):
        out = fleet.step(2)
        assert out["ticks"] == 2
        assert fleet.mux.ticks == 2
        assert fleet.paused  # stepping pauses the fleet
        assert not out["done"]

    def test_step_stops_at_done(self, fleet):
        out = fleet.step(1_000)
        assert out["done"]
        assert out["ticks"] < 1_000
        fleet.mux.check_conservation()

    def test_fleet_snapshot(self, fleet):
        fleet.step(1)
        snap = fleet.fleet()
        assert snap["streams"] == 2
        assert snap["ticks"] == 1
        assert snap["paused"] is True
        assert snap["pool"]["n_slabs"] == fleet.mux.pool.n_slabs
        assert snap["totals"]["produced_chunks"] > 0

    def test_inspect_one_stream(self, fleet):
        fleet.step(1)
        info = fleet.inspect("s000")
        assert info["stream_id"] == "s000"
        assert info["policy"] == "drop-oldest"
        assert info["counters"]["delivered_chunks"] > 0
        assert info["receiver"]["kind"] == "StreamingReceiver"
        assert info["receiver"]["n_samples"] > 0
        assert len(info["group_key"]) == 5
        with pytest.raises(KeyError):
            fleet.inspect("nope")


class TestPoke:
    def test_poke_advances_one_receiver_only(self, fleet):
        fleet.step(1)
        before = [
            fleet.inspect(sid)["receiver"]["n_samples"]
            for sid in ("s000", "s001")
        ]
        samples = make_capture(512, seed=9).samples
        fleet.poke("s000", samples)
        after = [
            fleet.inspect(sid)["receiver"]["n_samples"]
            for sid in ("s000", "s001")
        ]
        assert after[0] == before[0] + 512
        assert after[1] == before[1]

    def test_poked_stream_keeps_decoding(self, fleet):
        # the fleet continues normally after a poke; conservation is
        # untouched (poked samples never entered the pool)
        fleet.step(1)
        fleet.poke("s000", make_capture(256, seed=9).samples)
        fleet.step(1_000)
        fleet.mux.check_conservation()


class TestDrain:
    def test_drain_services_whole_queue(self):
        mux = make_mux(
            [make_capture(8_192)],
            capacity=64,
            service_rate_sps=SAMPLE_RATE * 0.25,
        )
        im = InteractiveMux(mux)
        im.step(2)
        assert im.inspect("s000")["queued_chunks"] > 0
        n = im.drain("s000")
        assert n > 0
        info = im.inspect("s000")
        assert info["queued_chunks"] == 0
        assert info["pending_samples"] == 0
        mux.check_conservation()


class TestAsyncRun:
    def test_pause_gates_ticks_resume_completes(self, fleet):
        mux = fleet.mux

        async def drive():
            task = asyncio.create_task(mux.run_async())
            while mux.ticks < 1:
                await asyncio.sleep(0)
            fleet.pause()
            await asyncio.sleep(0)
            frozen = mux.ticks
            for _ in range(20):
                await asyncio.sleep(0)
            assert mux.ticks == frozen  # gated at a tick boundary
            fleet.resume()
            await task

        asyncio.run(drive())
        assert mux.done
        mux.check_conservation()

    def test_async_result_matches_sync(self):
        sync = make_mux([make_capture(8_192, seed=3)])
        sync.run()

        async_mux = make_mux([make_capture(8_192, seed=3)])
        asyncio.run(async_mux.run_async())

        assert async_mux.totals() == sync.totals()
        np.testing.assert_array_equal(
            async_mux.state("s000").mux.receiver.finalize().bits,
            sync.state("s000").mux.receiver.finalize().bits,
        )

    def test_max_ticks_respected(self, fleet):
        executed = asyncio.run(fleet.mux.run_async(max_ticks=2))
        assert executed == 2
        assert fleet.mux.ticks == 2
