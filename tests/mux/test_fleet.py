"""Fleet construction from registered scenarios + the acceptance check.

The acceptance surface of the whole multiplexer: a drop-free mixed
fleet finalises, per stream, the exact decode a lone per-stream
receiver produces from the same capture.
"""

import numpy as np
import pytest

from repro.mux import (
    FleetStreamSpec,
    build_multiplexer,
    finalized_digests,
    stream_spec_from_scenario,
)
from repro.mux.fleet import bits_digest, golden_digest, truncate_spec


@pytest.fixture(scope="module")
def covert_spec():
    return stream_spec_from_scenario("stream-covert")


@pytest.fixture(scope="module")
def keylog_spec():
    return stream_spec_from_scenario("keylog")


class TestSpecExtraction:
    def test_stream_covert_layout(self, covert_spec):
        spec = covert_spec
        assert spec.kind == "covert"
        assert spec.capture.samples.size > 0
        assert spec.vrm_frequency_hz > 0
        assert spec.expected_bit_period_s > 0
        assert spec.tx_bits is not None and len(spec.tx_bits) > 0
        assert spec.decoder_config is not None

    def test_keylog_layout(self, keylog_spec):
        spec = keylog_spec
        assert spec.kind == "keylog"
        assert spec.capture.samples.size > 0
        assert spec.vrm_frequency_hz > 0
        assert spec.detector_config is not None

    @pytest.mark.parametrize(
        "name", ["ichannels-throttle", "clockmod-fsk"]
    )
    def test_attack_scenario_layout(self, name):
        spec = stream_spec_from_scenario(name)
        assert spec.kind == "covert"
        assert spec.capture.samples.size > 0
        assert spec.vrm_frequency_hz > 0
        assert spec.tx_bits is not None

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            stream_spec_from_scenario("no-such-scenario")

    def test_receivers_are_fresh_instances(self, covert_spec):
        a = covert_spec.make_receiver()
        b = covert_spec.make_receiver()
        assert a is not b
        assert a.online is True  # spec default: standalone receivers
        # fleets pass online=False (deferred) via FleetStreamSpec
        assert covert_spec.make_receiver(online=False).online is False

    def test_truncate_spec(self, covert_spec):
        fs = covert_spec.capture.sample_rate
        short = truncate_spec(covert_spec, 0.25)
        assert short.capture.samples.size == int(0.25 * fs)
        assert short.scenario == covert_spec.scenario
        # truncating past the end is the identity
        assert truncate_spec(covert_spec, 1e9) is covert_spec


class TestBuildMultiplexer:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            build_multiplexer([])

    def test_shared_capture_across_a_slice(self):
        mux, by_stream = build_multiplexer(
            [FleetStreamSpec("stream-covert", count=3, duration_s=0.2)]
        )
        specs = list(by_stream.values())
        assert len(specs) == 3
        # one render, shared read-only by every stream of the slice
        assert all(
            s.capture.samples is specs[0].capture.samples for s in specs
        )
        assert mux.n_streams == 3
        assert mux.stream_ids == [
            "stream-covert/00000",
            "stream-covert/00001",
            "stream-covert/00002",
        ]

    def test_pool_sized_to_sum_of_capacities(self):
        mux, _ = build_multiplexer(
            [FleetStreamSpec("stream-covert", count=2, capacity=4,
                             duration_s=0.2)]
        )
        assert mux.pool.n_slabs == 8


class TestAcceptance:
    """Drop-free mixed fleet == per-stream golden path, bit for bit."""

    def test_mixed_fleet_bit_identical(self):
        fleet = [
            FleetStreamSpec("stream-covert", count=2),
            FleetStreamSpec("keylog", count=2),
        ]
        mux, by_stream = build_multiplexer(fleet, chunk_size=512)
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        assert totals["dropped_chunks"] == 0
        assert totals["shed_chunks"] == 0

        digests = finalized_digests(mux, by_stream)
        goldens = {}
        for stream_id, spec in by_stream.items():
            key = (spec.scenario, spec.seed)
            if key not in goldens:
                goldens[key] = golden_digest(spec, chunk_size=512)
            assert digests[stream_id] == goldens[key], stream_id

    def test_covert_bits_match_batch_reference(self, covert_spec):
        # and the digest itself is the digest of the actual bit vector
        mux, by_stream = build_multiplexer(
            [FleetStreamSpec("stream-covert", count=1)], chunk_size=512
        )
        mux.run()
        (stream_id,) = by_stream
        receiver = mux.state(stream_id).mux.receiver
        bits = receiver.finalize().bits
        assert finalized_digests(mux, by_stream)[stream_id] == bits_digest(
            bits
        )
        # decode quality sanity: the finalised bits recover the payload
        tx = np.asarray(covert_spec.tx_bits)
        assert bits.size > 0.5 * tx.size
