"""Fixture-tree helpers for the lint rule tests.

Each rule test builds a minimal synthetic package tree under
``tmp_path`` and runs the real engine over it (the engine never imports
what it lints, so the snippets can be deliberately broken).
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict

import pytest

from repro.lint import run_lint


def write_tree(root: Path, files: Dict[str, str]) -> Path:
    for relpath, content in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


@pytest.fixture
def make_tree(tmp_path):
    """Build a tree and return a lint runner bound to it."""

    def build(files: Dict[str, str]):
        root = write_tree(tmp_path / "tree", files)

        def lint(**kwargs):
            kwargs.setdefault("baseline_path", False)
            return run_lint(root, **kwargs)

        return root, lint

    return build


def codes(report):
    """Rule codes of the *active* findings, in report order."""
    return [f.rule for f in report.active]
