"""Unit tests for the project symbol table / call graph (repro.lint.graph)."""

from __future__ import annotations

from repro.lint.engine import load_project
from repro.lint.graph import fn_key, project_graph

from .conftest import write_tree

TREE = {
    "repro/alpha.py": """
    from .beta import helper
    from . import gamma

    class Engine:
        def __init__(self, pool: "Pool"):
            self.pool = pool
            self.box = Box()

        def run(self, x):
            self.step(x)
            self.pool.acquire()
            self.box.open()
            return helper(x) + gamma.shape(x)

        def step(self, x):
            return x

    class Pool:
        def acquire(self):
            return 1

    class Box:
        def open(self):
            return 2

    def outer():
        def inner(y):
            return y

        return inner(3)
    """,
    "repro/beta.py": """
    def helper(x):
        return x + 1
    """,
    "repro/gamma.py": """
    def shape(x):
        return x * 2
    """,
}


def graph_of(tmp_path, files=TREE):
    root = write_tree(tmp_path, files)
    project, errors = load_project(root)
    assert not errors
    return project_graph(project)


def test_symbol_table_counts(tmp_path):
    graph = graph_of(tmp_path)
    assert fn_key("repro/alpha.py", "Engine.run") in graph.functions
    assert fn_key("repro/alpha.py", "outer.inner") in graph.functions
    assert fn_key("repro/alpha.py", "Engine") in graph.classes


def test_resolution_levels(tmp_path):
    """All four resolution levels from one call site each."""
    graph = graph_of(tmp_path)
    callees = {
        site.callee for site in graph.callees(fn_key("repro/alpha.py", "Engine.run"))
    }
    # from-import, self.method, module-attribute, annotated attribute,
    # and inferred constructor-assigned attribute:
    assert fn_key("repro/beta.py", "helper") in callees
    assert fn_key("repro/alpha.py", "Engine.step") in callees
    assert fn_key("repro/gamma.py", "shape") in callees
    assert fn_key("repro/alpha.py", "Pool.acquire") in callees
    assert fn_key("repro/alpha.py", "Box.open") in callees


def test_nested_def_scope_chain(tmp_path):
    graph = graph_of(tmp_path)
    callees = {
        site.callee for site in graph.callees(fn_key("repro/alpha.py", "outer"))
    }
    assert fn_key("repro/alpha.py", "outer.inner") in callees


def test_reachable_returns_shortest_chains(tmp_path):
    graph = graph_of(tmp_path)
    root = fn_key("repro/alpha.py", "Engine.run")
    chains = graph.reachable([root])
    assert chains[root] == [root]
    helper = fn_key("repro/beta.py", "helper")
    assert chains[helper] == [root, helper]
    steps = graph.qualchain(chains[helper])
    assert steps == ["repro/alpha.py:Engine.run", "repro/beta.py:helper"]


def test_no_phantom_edges_for_unknown_receivers(tmp_path):
    """Unresolvable calls produce no edges (may-call under-approximation)."""
    graph = graph_of(
        tmp_path,
        {
            "repro/solo.py": """
            def f(mystery):
                return mystery.run(1)
            """
        },
    )
    assert graph.callees(fn_key("repro/solo.py", "f")) == []


STAGE_TREE = {
    "repro/chain.py": """
    from .exec.cache import fingerprint

    def stage(key, compute):
        return compute()

    def run_chain(profile, rng, gain):
        key = fingerprint(profile, gain)
        return stage(key, lambda: rng)

    def run_meta(profile, rng, gain):
        return run_chain(profile, rng, gain)
    """,
    "repro/exec/cache.py": """
    def fingerprint(*parts):
        return hash(parts)
    """,
}


def test_stage_runner_keys_cross_module(tmp_path):
    graph = graph_of(tmp_path, STAGE_TREE)
    runners = graph.stage_runner_keys()
    assert fn_key("repro/chain.py", "run_chain") in runners
    # run_meta is a runner only transitively (it calls run_chain).
    assert fn_key("repro/chain.py", "run_meta") in runners


def test_sink_reach_direct_and_cross_call(tmp_path):
    graph = graph_of(tmp_path, STAGE_TREE)
    reach = graph.sink_reach("fingerprint")
    direct = reach[fn_key("repro/chain.py", "run_chain")]
    assert {"profile", "gain"} <= direct
    assert "rng" not in direct
    # Parameters reach the sink through the cross-module call fixpoint.
    meta = reach[fn_key("repro/chain.py", "run_meta")]
    assert {"profile", "gain"} <= meta
    assert "rng" not in meta


def test_key_carrier_attribute_counts_as_reach(tmp_path):
    graph = graph_of(
        tmp_path,
        {
            "repro/chain.py": """
            def stage(key, compute):
                return compute()

            def run_plan(plan):
                for key in plan.keys:
                    stage(key, lambda: None)
            """
        },
    )
    reach = graph.sink_reach("fingerprint", key_carrier_attrs=("keys",))
    assert "plan" in reach[fn_key("repro/chain.py", "run_plan")]
