"""DET001 (seed provenance) and DET002 (wall-clock) fixtures."""

from __future__ import annotations

from .conftest import codes


class TestDet001:
    def test_module_level_draw_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import numpy as np

                def draw():
                    return np.random.normal(0.0, 1.0)
                """
            }
        )
        report = lint(select=["DET001"])
        assert codes(report) == ["DET001"]
        assert "global generator" in report.active[0].message

    def test_aliased_numpy_import_resolved(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import numpy as xp

                def draw():
                    return xp.random.rand(4)
                """
            }
        )
        assert codes(lint(select=["DET001"])) == ["DET001"]

    def test_argless_default_rng_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                from numpy.random import default_rng

                def make():
                    return default_rng()
                """
            }
        )
        report = lint(select=["DET001"])
        assert codes(report) == ["DET001"]
        assert "OS entropy" in report.active[0].message

    def test_stdlib_random_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import random

                def draw():
                    return random.randint(0, 10)
                """
            }
        )
        assert codes(lint(select=["DET001"])) == ["DET001"]

    def test_seeded_calls_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import random

                import numpy as np
                from numpy.random import default_rng

                def make(seed):
                    a = np.random.default_rng(seed)
                    b = default_rng(seed + 1)
                    c = np.random.Generator(np.random.PCG64(seed))
                    d = np.random.SeedSequence(seed)
                    e = random.Random(seed)
                    return a, b, c, d, e
                """
            }
        )
        assert codes(lint(select=["DET001"])) == []


class TestDet002:
    def test_time_time_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        report = lint(select=["DET002"])
        assert codes(report) == ["DET002"]
        assert "wall-clock" in report.active[0].message

    def test_datetime_now_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            }
        )
        assert codes(lint(select=["DET002"])) == ["DET002"]

    def test_allowlisted_module_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/obs/manifest.py": """
                import time

                def stamp():
                    return time.time()
                """
            }
        )
        assert codes(lint(select=["DET002"])) == []

    def test_monotonic_clocks_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import time

                def elapsed(t0):
                    return time.perf_counter() - t0, time.monotonic()
                """
            }
        )
        assert codes(lint(select=["DET002"])) == []
