"""ASYNC001/ASYNC002: event-loop safety over the project call graph."""

from __future__ import annotations

from .conftest import codes

#: A Component-free mux-scoped tree where the async path is clean: the
#: scheduler awaits, yields, and calls helpers that do pure compute.
CLEAN = {
    "repro/mux/scheduler.py": """
    import asyncio

    from .helpers import shape

    async def run_async(ticks):
        total = 0
        for _ in range(ticks):
            total += shape(total)
            await asyncio.sleep(0)
        return total
    """,
    "repro/mux/helpers.py": """
    def shape(x):
        return x * 2 + 1
    """,
}

#: The blocking call hides two modules away from the async def.
CROSS_MODULE_BLOCKING = {
    "repro/mux/scheduler.py": """
    from .middle import settle

    async def run_async(ticks):
        for _ in range(ticks):
            settle()
    """,
    "repro/mux/middle.py": """
    from .deep import backoff

    def settle():
        backoff()
    """,
    "repro/mux/deep.py": """
    import time

    def backoff():
        time.sleep(0.1)
    """,
}

#: Same sleep, but nothing async reaches it: not a finding.
UNREACHABLE_BLOCKING = {
    "repro/mux/scheduler.py": """
    async def run_async(ticks):
        return ticks
    """,
    "repro/mux/deep.py": """
    import time

    def backoff():
        time.sleep(0.1)
    """,
}

#: Blocking call in an async def *outside* the configured scopes.
OUT_OF_SCOPE = {
    "repro/tools/sync.py": """
    import time

    async def run_async(ticks):
        time.sleep(0.1)
    """,
}

DROPPED_AWAITABLE = {
    "repro/mux/scheduler.py": """
    import asyncio

    async def _drain(n):
        return n

    async def run_async(ticks):
        asyncio.sleep(0)
        _drain(ticks)
        await _drain(ticks)
    """,
}


def test_clean_async_tree(make_tree):
    _, lint = make_tree(CLEAN)
    report = lint(select=["ASYNC001", "ASYNC002"])
    assert report.ok, report.render_text()


def test_cross_module_blocking_found_with_chain(make_tree):
    _, lint = make_tree(CROSS_MODULE_BLOCKING)
    report = lint(select=["ASYNC001"])
    assert codes(report) == ["ASYNC001"]
    finding = report.active[0]
    assert finding.path == "repro/mux/deep.py"
    assert "time.sleep" in finding.message
    # The resolved chain rides along: root -> ... -> offending function.
    chain = finding.meta["chain"]
    assert chain[0].endswith("run_async")
    assert chain[-1].endswith("backoff")
    assert "run_async" in finding.message and "backoff" in finding.message


def test_unreachable_blocking_is_not_flagged(make_tree):
    _, lint = make_tree(UNREACHABLE_BLOCKING)
    report = lint(select=["ASYNC001"])
    assert report.ok, report.render_text()


def test_out_of_scope_async_is_not_flagged(make_tree):
    _, lint = make_tree(OUT_OF_SCOPE)
    report = lint(select=["ASYNC001"])
    assert report.ok, report.render_text()


def test_blocking_io_and_pool_fanout_variants(make_tree):
    _, lint = make_tree(
        {
            "repro/mux/scheduler.py": """
            async def run_async(pool, path, items):
                path.write_text("state")
                pool.map(len, items)
            """
        }
    )
    report = lint(select=["ASYNC001"])
    assert codes(report) == ["ASYNC001", "ASYNC001"]
    messages = " | ".join(f.message for f in report.active)
    assert "write_text" in messages and "pool.map" in messages


def test_dropped_awaitables_found(make_tree):
    _, lint = make_tree(DROPPED_AWAITABLE)
    report = lint(select=["ASYNC002"])
    # Both the asyncio.sleep(0) and the bare _drain(ticks) are dropped;
    # the awaited call is not flagged.
    assert codes(report) == ["ASYNC002", "ASYNC002"]
    assert {f.line for f in report.active} == {8, 9}


def test_one_finding_per_call_site_with_many_roots(make_tree):
    files = {
        "repro/mux/scheduler.py": """
        from .deep import backoff

        async def run_a():
            backoff()

        async def run_b():
            backoff()
        """,
        "repro/mux/deep.py": """
        import time

        def backoff():
            time.sleep(0.1)
        """,
    }
    _, lint = make_tree(files)
    report = lint(select=["ASYNC001"])
    assert codes(report) == ["ASYNC001"]
