"""FLOAT001 fixtures: float equality in dsp/ and vrm/ scopes."""

from __future__ import annotations

from .conftest import codes


class TestFloat001:
    def test_float_literal_equality_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/dsp/mod.py": """
                def check(x):
                    return x == 0.5
                """
            }
        )
        report = lint(select=["FLOAT001"])
        assert codes(report) == ["FLOAT001"]
        assert "isclose" in report.active[0].message

    def test_vrm_scope_and_not_equal_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/vrm/mod.py": """
                def check(duty):
                    return duty != 1.0
                """
            }
        )
        assert codes(lint(select=["FLOAT001"])) == ["FLOAT001"]

    def test_float_call_and_binop_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/dsp/mod.py": """
                def check(x, y, n):
                    return x == float(n) or y == n * 0.25
                """
            }
        )
        assert codes(lint(select=["FLOAT001"])) == ["FLOAT001", "FLOAT001"]

    def test_integer_comparison_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/dsp/mod.py": """
                def check(n, m):
                    return n == 0 and m != 4096
                """
            }
        )
        assert codes(lint(select=["FLOAT001"])) == []

    def test_outside_scope_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/power/mod.py": """
                def check(x):
                    return x == 0.5
                """
            }
        )
        assert codes(lint(select=["FLOAT001"])) == []

    def test_suppressed_sentinel_check(self, make_tree):
        _, lint = make_tree(
            {
                "repro/dsp/mod.py": """
                def noise_off(amplitude):
                    return amplitude == 0.0  # lint: disable=FLOAT001
                """
            }
        )
        report = lint(select=["FLOAT001"])
        assert codes(report) == []
        assert len(report.suppressed) == 1
