"""RES001/RES002: pooled-buffer lifecycle over the per-function CFG."""

from __future__ import annotations

from .conftest import codes

#: Minimal pool implementation module - its own freelist .pop() calls
#: are bookkeeping, not ownership acquisition (res_impl_modules).
POOL = {
    "repro/mux/pool.py": """
    class ChunkPool:
        def __init__(self):
            self._free = []

        def pop(self):
            if self._free:
                return self._free.pop()
            return None

        def release(self, chunk):
            self._free.append(chunk)
    """
}


def tree(body: str):
    files = dict(POOL)
    files["repro/mux/scheduler.py"] = body
    return files


def test_impl_module_freelist_is_exempt(make_tree):
    _, lint = make_tree(POOL)
    report = lint(select=["RES001", "RES002"])
    assert report.ok, report.render_text()


def test_release_in_finally_is_clean(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool, work):
                chunk = pool.pop()
                try:
                    work(chunk)
                finally:
                    pool.release(chunk)
            """
        )
    )
    report = lint(select=["RES001"])
    assert report.ok, report.render_text()


def test_branch_missing_release_leaks_some_path(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool, work, keep):
                chunk = pool.pop()
                if keep:
                    work(chunk)
                else:
                    pool.release(chunk)
            """
        )
    )
    report = lint(select=["RES001"])
    assert codes(report) == ["RES001"]
    assert "some path" in report.active[0].message


def test_exception_path_leak_is_reported_as_such(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool, work):
                chunk = pool.pop()
                try:
                    work(chunk)
                except ValueError:
                    raise
                pool.release(chunk)
            """
        )
    )
    report = lint(select=["RES001"])
    assert codes(report) == ["RES001"]
    assert "exception path" in report.active[0].message


def test_handoff_to_discharging_callee_is_clean(make_tree):
    _, lint = make_tree(
        tree(
            """
            def _dispatch(pool, chunk, ready):
                if ready:
                    pool.release(chunk)
                else:
                    pool.release(chunk)

            def drain(pool, ready):
                chunk = pool.pop()
                _dispatch(pool, chunk, ready)
            """
        )
    )
    report = lint(select=["RES001"])
    assert report.ok, report.render_text()


def test_dropped_acquire_is_immediate_finding(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool):
                pool.pop()
            """
        )
    )
    report = lint(select=["RES001"])
    assert codes(report) == ["RES001"]


def test_escape_by_return_discharges(make_tree):
    _, lint = make_tree(
        tree(
            """
            def take(pool):
                chunk = pool.pop()
                return chunk
            """
        )
    )
    report = lint(select=["RES001"])
    assert report.ok, report.render_text()


def test_use_after_release_of_view_attr(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool):
                chunk = pool.pop()
                pool.release(chunk)
                return chunk.samples
            """
        )
    )
    report = lint(select=["RES002"])
    assert codes(report) == ["RES002"]
    assert "samples" in report.active[0].message


def test_metadata_read_after_release_is_legal(make_tree):
    # Plain metadata (size, flags) stays valid after the slab goes back
    # to the pool; only the pooled view attrs alias recycled memory.
    _, lint = make_tree(
        tree(
            """
            def drain(pool):
                chunk = pool.pop()
                pool.release(chunk)
                return chunk.size
            """
        )
    )
    report = lint(select=["RES002"])
    assert report.ok, report.render_text()


def test_reacquire_kills_released_state(make_tree):
    _, lint = make_tree(
        tree(
            """
            def drain(pool):
                chunk = pool.pop()
                pool.release(chunk)
                chunk = pool.pop()
                view = chunk.samples
                pool.release(chunk)
                return view
            """
        )
    )
    report = lint(select=["RES002"])
    assert report.ok, report.render_text()


def test_out_of_scope_pop_is_not_tracked(make_tree):
    _, lint = make_tree(
        {
            "repro/tools/queueing.py": """
            def drain(pool):
                chunk = pool.pop()
                chunk.size = 0
            """
        }
    )
    report = lint(select=["RES001", "RES002"])
    assert report.ok, report.render_text()
