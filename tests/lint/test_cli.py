"""`repro lint` CLI surface: flags, formats, maintenance actions."""

from __future__ import annotations

import json

from repro.cli import main
from repro.lint import rules_by_code

from .conftest import write_tree

VIOLATION = {
    "repro/mod.py": """
    import numpy as np

    def draw():
        return np.random.normal(0.0, 1.0)
    """
}

ALL_CODES = [
    "DET001",
    "DET002",
    "CACHE001",
    "CONC001",
    "TRACE001",
    "FLOAT001",
    "ASYNC001",
    "ASYNC002",
    "RES001",
    "RES002",
    "SCEN001",
    "SCEN002",
]


def test_registry_covers_the_issue_codes():
    assert sorted(rules_by_code()) == sorted(ALL_CODES)


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out


def test_jsonl_format(tmp_path, capsys):
    root = write_tree(tmp_path, VIOLATION)
    assert (
        main(
            [
                "lint",
                "--root",
                str(root),
                "--select",
                "DET001",
                "--format",
                "jsonl",
                "--no-baseline",
            ]
        )
        == 1
    )
    record = json.loads(capsys.readouterr().out.strip())
    assert record["rule"] == "DET001"


def test_report_file_written(tmp_path, capsys):
    root = write_tree(tmp_path, VIOLATION)
    out = tmp_path / "findings.jsonl"
    main(
        [
            "lint",
            "--root",
            str(root),
            "--select",
            "DET001",
            "--report",
            str(out),
            "--no-baseline",
        ]
    )
    capsys.readouterr()
    assert out.exists()
    assert json.loads(out.read_text().splitlines()[0])["rule"] == "DET001"


def test_write_baseline_then_green(tmp_path, capsys):
    root = write_tree(tmp_path, VIOLATION)
    baseline = tmp_path / "baseline.json"
    common = [
        "lint",
        "--root",
        str(root),
        "--select",
        "DET001",
        "--baseline",
        str(baseline),
    ]
    assert main(common) == 1
    assert main(common + ["--write-baseline"]) == 0
    assert main(common) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_update_schema_writes_manifest(tmp_path, capsys):
    files = {
        "repro/chain.py": "",
        "repro/exec/cache.py": 'CHAIN_SCHEMA = "chain-v1"\n',
    }
    root = write_tree(tmp_path, files)
    assert main(["lint", "--root", str(root), "--update-schema"]) == 0
    capsys.readouterr()
    manifest = root / "repro/lint/chain_schema.json"
    assert manifest.exists()
    assert json.loads(manifest.read_text())["chain_schema"] == "chain-v1"
