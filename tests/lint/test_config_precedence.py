"""Config layering: built-in defaults < [tool.repro.lint] < explicit
LintConfig, plus the no-tomllib fallback parser."""

from __future__ import annotations

import textwrap

from repro.cli import main
from repro.lint import DEFAULT_CONFIG, LintConfig, load_config
from repro.lint.config import (
    _parse_toml_section_fallback,
    _read_pyproject_section,
    find_pyproject,
)

from .conftest import write_tree

PYPROJECT = """
[project]
name = "fixture"

[tool.repro.lint]
wallclock_allowlist = ["repro/stamp.py"]
float_eq_scopes = ["repro/num/"]
scenario_component_base = ["repro/plug/base.py", "Plugin"]

[tool.other]
unrelated = true
"""

TREE = {
    "repro/stamp.py": """
    import time

    def stamp():
        return time.time()
    """,
}


def test_defaults_without_pyproject(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    assert load_config(root) == DEFAULT_CONFIG


def test_pyproject_overrides_defaults(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    (root / "pyproject.toml").write_text(textwrap.dedent(PYPROJECT))
    config = load_config(root)
    assert config.wallclock_allowlist == ("repro/stamp.py",)
    assert config.float_eq_scopes == ("repro/num/",)
    # Two-element tuple fields coerce elementwise.
    assert config.scenario_component_base == ("repro/plug/base.py", "Plugin")
    # Untouched fields keep the built-in defaults.
    assert config.package == DEFAULT_CONFIG.package
    assert config.blocking_calls == DEFAULT_CONFIG.blocking_calls


def test_pyproject_found_one_level_above_root(tmp_path):
    root = write_tree(tmp_path / "tree" / "src", TREE)
    (tmp_path / "tree" / "pyproject.toml").write_text(
        textwrap.dedent(PYPROJECT)
    )
    assert find_pyproject(root) == tmp_path / "tree" / "pyproject.toml"
    config = load_config(root)
    assert config.wallclock_allowlist == ("repro/stamp.py",)


def test_explicit_config_wins_over_pyproject(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    (root / "pyproject.toml").write_text(textwrap.dedent(PYPROJECT))
    explicit = LintConfig(wallclock_allowlist=())
    # run_lint receives the explicit config untouched; load_config only
    # overlays when asked to start from a base.
    layered = load_config(root, base=explicit)
    assert layered.wallclock_allowlist == ("repro/stamp.py",)
    assert explicit.wallclock_allowlist == ()


def test_pyproject_false_skips_overlay(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    (root / "pyproject.toml").write_text(textwrap.dedent(PYPROJECT))
    assert load_config(root, pyproject=False) == DEFAULT_CONFIG


def test_unknown_keys_are_ignored(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    (root / "pyproject.toml").write_text(
        "[tool.repro.lint]\nnot_a_field = true\n"
    )
    assert load_config(root) == DEFAULT_CONFIG


def test_fallback_parser_matches_tomllib(tmp_path):
    text = textwrap.dedent(PYPROJECT)
    path = tmp_path / "pyproject.toml"
    path.write_text(text)
    via_tomllib = _read_pyproject_section(path)
    via_fallback = _parse_toml_section_fallback(text, "tool.repro.lint")
    assert via_tomllib == via_fallback
    assert via_fallback["wallclock_allowlist"] == ["repro/stamp.py"]


def test_fallback_parser_multiline_arrays_and_comments():
    text = textwrap.dedent(
        """
        [tool.repro.lint]
        # a comment line
        chain_scope = [
            "repro/chain.py",
            "repro/batch/",
        ]
        package = "repro"
        """
    )
    section = _parse_toml_section_fallback(text, "tool.repro.lint")
    assert section == {
        "chain_scope": ["repro/chain.py", "repro/batch/"],
        "package": "repro",
    }


def test_cli_lint_reads_pyproject_of_the_root(tmp_path, capsys):
    # time.time() in repro/stamp.py is a DET002 finding under the
    # defaults but allowlisted by the tree's own pyproject section.
    root = write_tree(tmp_path / "tree", TREE)
    assert (
        main(
            ["lint", "--root", str(root), "--select", "DET002", "--no-baseline"]
        )
        == 1
    )
    capsys.readouterr()
    (root / "pyproject.toml").write_text(textwrap.dedent(PYPROJECT))
    assert (
        main(
            ["lint", "--root", str(root), "--select", "DET002", "--no-baseline"]
        )
        == 0
    )
    capsys.readouterr()


def test_shipped_pyproject_section_matches_the_defaults():
    """The committed [tool.repro.lint] pins values the defaults already
    have: the overlay must be a no-op on the shipped tree."""
    from repro.lint.cli import default_root

    assert load_config(default_root()) == DEFAULT_CONFIG
