"""CONC001 fixtures: raw writes to guarded store paths."""

from __future__ import annotations

from .conftest import codes


class TestConc001:
    def test_raw_write_to_results_path_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                def save(results_path, line):
                    with open(results_path, "a") as fh:
                        fh.write(line)
                """
            }
        )
        report = lint(select=["CONC001"])
        assert codes(report) == ["CONC001"]
        assert "locked/atomic helpers" in report.active[0].message

    def test_path_open_write_on_cache_dir_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                def publish(cache_dir, key, payload):
                    with (cache_dir / key).open("wb") as fh:
                        fh.write(payload)
                """
            }
        )
        assert codes(lint(select=["CONC001"])) == ["CONC001"]

    def test_write_text_on_store_path_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                def publish(store_path, body):
                    store_path.write_text(body)
                """
            }
        )
        assert codes(lint(select=["CONC001"])) == ["CONC001"]

    def test_read_mode_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                def load(results_path):
                    with open(results_path, "r") as fh:
                        return fh.read()
                """
            }
        )
        assert codes(lint(select=["CONC001"])) == []

    def test_unguarded_path_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                def save(report_path, body):
                    with open(report_path, "w") as fh:
                        fh.write(body)
                """
            }
        )
        assert codes(lint(select=["CONC001"])) == []

    def test_blessed_module_clean(self, make_tree):
        _, lint = make_tree(
            {
                "repro/exec/cache.py": """
                def publish(cache_dir, key, payload):
                    with (cache_dir / key).open("wb") as fh:
                        fh.write(payload)
                """
            }
        )
        assert codes(lint(select=["CONC001"])) == []

    def test_raw_fcntl_outside_cache_module_flagged(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import fcntl

                def hold(handle):
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                """
            }
        )
        report = lint(select=["CONC001"])
        assert codes(report) == ["CONC001"]
        assert "ChainCache.lock()" in report.active[0].message
