"""TRACE001 fixtures: span names and Tracer containment."""

from __future__ import annotations

from .conftest import codes

TRACE_MODULE = {
    "repro/obs/trace.py": """
    REGISTERED_SPANS = frozenset({"pmu", "vrm"})


    def span(name, attrs=None, lazy=None):
        pass


    class Tracer:
        pass
    """
}


class TestTrace001:
    def test_registered_literal_clean(self, make_tree):
        _, lint = make_tree(
            {
                **TRACE_MODULE,
                "repro/mod.py": """
                from .obs.trace import span

                def go():
                    with span("pmu"):
                        pass
                """,
            }
        )
        assert codes(lint(select=["TRACE001"])) == []

    def test_unregistered_literal_flagged(self, make_tree):
        _, lint = make_tree(
            {
                **TRACE_MODULE,
                "repro/mod.py": """
                from .obs.trace import span

                def go():
                    with span("pmuu"):
                        pass
                """,
            }
        )
        report = lint(select=["TRACE001"])
        assert codes(report) == ["TRACE001"]
        assert "'pmuu'" in report.active[0].message

    def test_forwarding_helper_checked_at_call_site(self, make_tree):
        """A helper forwarding its param is fine; its call sites carry
        the literal and are checked against the registry."""
        _, lint = make_tree(
            {
                **TRACE_MODULE,
                "repro/mod.py": """
                from .obs.trace import span

                def stage_span(name, key):
                    return span(name, {"key": key})

                def good():
                    return stage_span("vrm", "k")

                def bad():
                    return stage_span("unregistered", "k")
                """,
            }
        )
        report = lint(select=["TRACE001"])
        assert codes(report) == ["TRACE001"]
        assert "'unregistered'" in report.active[0].message

    def test_dynamic_name_outside_helper_flagged(self, make_tree):
        _, lint = make_tree(
            {
                **TRACE_MODULE,
                "repro/mod.py": """
                from .obs.trace import span

                def go(names):
                    with span(names[0]):
                        pass
                """,
            }
        )
        report = lint(select=["TRACE001"])
        assert codes(report) == ["TRACE001"]
        assert "string literal" in report.active[0].message

    def test_tracer_outside_obs_flagged(self, make_tree):
        _, lint = make_tree(
            {
                **TRACE_MODULE,
                "repro/mod.py": """
                from .obs.trace import Tracer

                def go(sink):
                    return Tracer(sink)
                """,
            }
        )
        report = lint(select=["TRACE001"])
        assert codes(report) == ["TRACE001"]
        assert "tracing_scope" in report.active[0].message

    def test_trace_module_itself_exempt(self, make_tree):
        _, lint = make_tree(TRACE_MODULE)
        assert codes(lint(select=["TRACE001"])) == []
