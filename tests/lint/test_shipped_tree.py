"""Acceptance pins: the shipped tree lints clean, and a seeded
synthetic violation of *each* rule code makes `repro lint` exit
non-zero (the issue's acceptance criteria, as tests)."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import run_lint

SHIPPED_ROOT = Path(repro.__file__).resolve().parent.parent

#: (rule code, file to mutate, mutation) - each seeds one violation
#: into a pristine copy of the shipped tree.
SEEDED_VIOLATIONS = [
    (
        "DET001",
        "repro/power/idle.py",
        lambda text: text
        + "\n\ndef _seeded_det001():\n"
        + "    import numpy as _np\n\n"
        + "    return _np.random.rand(3)\n",
    ),
    (
        "DET002",
        "repro/power/idle.py",
        lambda text: text
        + "\n\ndef _seeded_det002():\n"
        + "    import time as _t\n\n"
        + "    return _t.time()\n",
    ),
    (
        "CACHE001",
        "repro/params.py",
        lambda text: text.replace(
            "    freq_scale: float = 1.0\n",
            "    freq_scale: float = 1.0\n    seeded_knob: float = 0.0\n",
            1,
        ),
    ),
    (
        "CONC001",
        "repro/power/idle.py",
        lambda text: text
        + "\n\ndef _seeded_conc001(results_path):\n"
        + '    with open(results_path, "a") as fh:\n'
        + '        fh.write("x")\n',
    ),
    (
        "TRACE001",
        "repro/power/idle.py",
        lambda text: text
        + "\n\ndef _seeded_trace001():\n"
        + "    from ..obs.trace import span\n\n"
        + '    with span("seeded-unregistered"):\n'
        + "        pass\n",
    ),
    (
        "FLOAT001",
        "repro/dsp/windows.py",
        lambda text: text
        + "\n\ndef _seeded_float001(x):\n"
        + "    return x == 0.25\n",
    ),
    (
        "ASYNC001",
        "repro/mux/scheduler.py",
        lambda text: text
        + "\n\nasync def _seeded_async001():\n"
        + "    import time as _t\n\n"
        + "    _t.sleep(0.01)\n",
    ),
    (
        "ASYNC002",
        "repro/mux/scheduler.py",
        lambda text: text
        + "\n\nasync def _seeded_async002():\n"
        + "    import asyncio as _aio\n\n"
        + "    _aio.sleep(0)\n",
    ),
    (
        "RES001",
        "repro/mux/scheduler.py",
        lambda text: text
        + "\n\ndef _seeded_res001(pool):\n"
        + "    chunk = pool.pop()\n"
        + "    chunk.size = 0\n",
    ),
    (
        "RES002",
        "repro/mux/scheduler.py",
        lambda text: text
        + "\n\ndef _seeded_res002(pool):\n"
        + "    chunk = pool.pop()\n"
        + "    pool.release(chunk)\n"
        + "    return chunk.samples\n",
    ),
    (
        "SCEN001",
        "repro/scenario/components/receivers.py",
        lambda text: text
        + "\n\nclass _SeededScen001(Component):\n"
        + '    slot = "seeded"\n'
        + '    name = "seeded-scen001"\n'
        + '    provides = ("seeded.out",)\n'
        + "    requires = ()\n\n"
        + "    def run(self, ctx):\n"
        + '        ctx.publish(self, "seeded.undeclared", 1)\n',
    ),
    (
        "SCEN002",
        "repro/scenario/components/receivers.py",
        lambda text: text
        + "\n\nclass _SeededScen002(Component):\n"
        + '    slot = "seeded2"\n'
        + '    name = "seeded-scen002"\n'
        + "    provides = ()\n"
        + "    requires = ()\n\n"
        + "    def run(self, ctx):\n"
        + "        return np.random.standard_normal(4)\n",
    ),
]


def test_shipped_tree_is_clean():
    """`python -m repro lint` exits zero on the tree as committed."""
    report = run_lint(SHIPPED_ROOT)
    assert report.ok, report.render_text()


def test_shipped_tree_clean_via_cli(capsys):
    assert main(["lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


@pytest.fixture(scope="module")
def mutable_copy(tmp_path_factory):
    """One pristine copy of the shipped package per test module."""
    base = tmp_path_factory.mktemp("shipped")
    shutil.copytree(SHIPPED_ROOT / "repro", base / "repro")
    return base


@pytest.mark.parametrize(
    "code,relpath,mutate",
    SEEDED_VIOLATIONS,
    ids=[v[0] for v in SEEDED_VIOLATIONS],
)
def test_seeded_violation_fails_the_gate(
    mutable_copy, code, relpath, mutate, capsys
):
    target = mutable_copy / relpath
    pristine = target.read_text()
    try:
        target.write_text(mutate(pristine))
        assert main(["lint", "--root", str(mutable_copy)]) == 1
        out = capsys.readouterr().out
        assert code in out
    finally:
        target.write_text(pristine)


def test_restored_copy_is_clean_again(mutable_copy):
    """The fixture restores each mutation; the copy still lints clean."""
    report = run_lint(mutable_copy)
    assert report.ok, report.render_text()


def test_manifest_time_call_is_allowlisted_not_fingerprinted():
    """The issue's specific audit item: obs/manifest.py stamps
    generated_unix with time.time() - allowlisted for DET002, and the
    stamp is not part of config_fingerprint."""
    manifest_src = (SHIPPED_ROOT / "repro/obs/manifest.py").read_text()
    assert "time.time()" in manifest_src
    report = run_lint(SHIPPED_ROOT, select=["DET002"])
    assert report.ok, report.render_text()
    fingerprint_line = next(
        line
        for line in manifest_src.splitlines()
        if "return fingerprint(" in line
    )
    assert "generated" not in fingerprint_line
