"""SCEN001/SCEN002: scenario component contracts, statically."""

from __future__ import annotations

from .conftest import codes

#: Minimal component base mirroring repro/scenario/component.py.
BASE = {
    "repro/scenario/component.py": """
    class Component:
        slot = ""
        name = ""
        provides = ()
        requires = ()

        def run(self, ctx):
            raise NotImplementedError
    """
}


def tree(body: str, relpath: str = "repro/scenario/components/custom.py"):
    files = dict(BASE)
    files[relpath] = body
    return files


CLEAN = """
from ..component import Component

class Source(Component):
    slot = "source"
    name = "src"
    provides = ("sig.raw",)
    requires = ()

    def run(self, ctx):
        ctx.publish(self, "sig.raw", 1.0)

class Sink(Component):
    slot = "sink"
    name = "snk"
    provides = ("sig.out",)
    requires = ("sig.raw",)

    def run(self, ctx):
        raw = ctx.get("sig.raw")
        ctx.publish(self, "sig.out", raw * 2)
"""


def test_clean_component_pair(make_tree):
    _, lint = make_tree(tree(CLEAN))
    report = lint(select=["SCEN001", "SCEN002"])
    assert report.ok, report.render_text()


def test_undeclared_publish(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class Source(Component):
                slot = "source"
                name = "src"
                provides = ("sig.raw",)
                requires = ()

                def run(self, ctx):
                    ctx.publish(self, "sig.extra", 1.0)
            """
        )
    )
    report = lint(select=["SCEN001"])
    assert codes(report) == ["SCEN001"]
    assert "sig.extra" in report.active[0].message
    assert "provides" in report.active[0].message


def test_undeclared_get(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class Source(Component):
                slot = "source"
                name = "src"
                provides = ("sig.raw", "sig.side")
                requires = ()

                def run(self, ctx):
                    ctx.publish(self, "sig.raw", 1.0)

            class Sink(Component):
                slot = "sink"
                name = "snk"
                provides = ()
                requires = ("sig.raw",)

                def run(self, ctx):
                    return ctx.get("sig.side")
            """
        )
    )
    report = lint(select=["SCEN001"])
    assert codes(report) == ["SCEN001"]
    assert "requires" in report.active[0].message


def test_unsatisfiable_get(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class Sink(Component):
                slot = "sink"
                name = "snk"
                provides = ()
                requires = ("sig.ghost",)

                def run(self, ctx):
                    return ctx.get("sig.ghost")
            """
        )
    )
    report = lint(select=["SCEN001"])
    assert codes(report) == ["SCEN001"]
    assert "never be satisfied" in report.active[0].message


def test_has_probe_and_computed_names_are_exempt(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class Sink(Component):
                slot = "sink"
                name = "snk"
                provides = ()
                requires = ()

                def run(self, ctx):
                    if ctx.has("sig.optional"):
                        return 1
                    key = "sig." + self.name
                    return ctx.get(key)
            """
        )
    )
    report = lint(select=["SCEN001"])
    assert report.ok, report.render_text()


def test_foreign_stream_draw(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class Pair(Component):
                slot = "pair"
                name = "pair"
                provides = ()
                requires = ()

                def run(self, ctx, other):
                    return ctx.rng(other).normal()
            """
        )
    )
    report = lint(select=["SCEN002"])
    assert codes(report) == ["SCEN002"]
    assert "does not own" in report.active[0].message


def test_global_numpy_and_stdlib_random_draws(make_tree):
    _, lint = make_tree(
        tree(
            """
            import random

            import numpy as np

            from ..component import Component

            class Noisy(Component):
                slot = "noisy"
                name = "noisy"
                provides = ()
                requires = ()

                def run(self, ctx):
                    a = np.random.standard_normal(4)
                    b = np.random.default_rng()
                    c = random.random()
                    return a, b, c
            """
        )
    )
    report = lint(select=["SCEN002"])
    assert codes(report) == ["SCEN002", "SCEN002", "SCEN002"]


def test_own_stream_and_seeded_generator_pass(make_tree):
    _, lint = make_tree(
        tree(
            """
            import numpy as np

            from ..component import Component

            class Quiet(Component):
                slot = "quiet"
                name = "quiet"
                provides = ()
                requires = ()

                def run(self, ctx):
                    rng = ctx.rng(self)
                    sub = np.random.default_rng(ctx.derive_seed("sub"))
                    return rng.normal() + sub.normal()
            """
        )
    )
    report = lint(select=["SCEN002"])
    assert report.ok, report.render_text()


def test_non_component_classes_are_exempt(make_tree):
    # The same calls outside a Component subclass belong to other
    # rules (DET001), not the scenario-contract mirror.
    _, lint = make_tree(
        tree(
            """
            class Helper:
                def run(self, ctx):
                    ctx.publish(self, "anything", 1)
            """
        )
    )
    report = lint(select=["SCEN001", "SCEN002"])
    assert report.ok, report.render_text()


def test_inherited_declarations_resolve_through_base_chain(make_tree):
    _, lint = make_tree(
        tree(
            """
            from ..component import Component

            class SourceBase(Component):
                slot = "source"
                provides = ("sig.raw",)
                requires = ()

            class Impl(SourceBase):
                name = "impl"

                def run(self, ctx):
                    ctx.publish(self, "sig.raw", 1.0)
            """
        )
    )
    report = lint(select=["SCEN001"])
    assert report.ok, report.render_text()
