"""The incremental lint cache (repro.lint.cache): hits, invalidation,
corruption tolerance, and CLI surface."""

from __future__ import annotations

import json

from repro.cli import main
from repro.lint import LintCache, LintConfig, run_lint
from repro.lint.cache import (
    config_digest,
    file_key,
    run_key,
    source_digest,
)

from .conftest import write_tree

TREE = {
    "repro/mod.py": """
    import numpy as np

    def draw():
        return np.random.normal(0.0, 1.0)
    """,
    "repro/clean.py": """
    def double(x):
        return x * 2
    """,
}


def lint_with(root, cache, **kwargs):
    kwargs.setdefault("baseline_path", False)
    # Scoped to the per-file determinism rules: the synthetic trees
    # carry no chain-schema manifest, which CACHE001 rightly flags.
    kwargs.setdefault("select", ["DET001", "DET002"])
    return run_lint(root, cache=cache, **kwargs)


def fingerprints(report):
    return [f.fingerprint for f in report.findings]


def test_warm_run_is_a_run_layer_hit_with_identical_findings(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    cache = LintCache(tmp_path / "cache")
    cold = lint_with(root, cache)
    warm = lint_with(root, cache)
    assert cache.stats.run_misses == 1
    assert cache.stats.run_hits == 1
    assert fingerprints(warm) == fingerprints(cold)
    assert warm.files_checked == cold.files_checked
    assert [f.rule for f in warm.active] == [f.rule for f in cold.active]


def test_editing_one_file_invalidates_only_that_file(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    lint_with(root, LintCache(tmp_path / "cache"))
    (root / "repro/clean.py").write_text("def triple(x):\n    return x * 3\n")
    cache = LintCache(tmp_path / "cache")
    report = lint_with(root, cache)
    assert cache.stats.run_hits == 0
    assert cache.stats.ast_hits == 1 and cache.stats.ast_misses == 1
    assert cache.stats.file_hits == 1 and cache.stats.file_misses == 1
    assert [f.rule for f in report.active] == ["DET001"]


def test_config_change_invalidates(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    cache = LintCache(tmp_path / "cache")
    lint_with(root, cache)
    report = lint_with(
        root, cache, config=LintConfig(exclude=("repro/mod.py",))
    )
    assert cache.stats.run_hits == 0
    assert report.ok


def test_select_change_invalidates_run_but_keys_differ(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    cache = LintCache(tmp_path / "cache")
    lint_with(root, cache)
    narrowed = lint_with(root, cache, select=["DET002"])
    assert cache.stats.run_hits == 0
    assert narrowed.ok
    # And re-running the original selection is a hit again.
    lint_with(root, cache)
    assert cache.stats.run_hits == 1


def test_corrupt_entries_read_as_misses(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    cache = LintCache(tmp_path / "cache")
    cold = lint_with(root, cache)
    for path in (tmp_path / "cache").rglob("*.*"):
        path.write_bytes(b"\x00garbage")
    cache2 = LintCache(tmp_path / "cache")
    warm = lint_with(root, cache2)
    assert cache2.stats.run_hits == 0
    assert fingerprints(warm) == fingerprints(cold)


def test_baseline_is_reapplied_on_run_hits(tmp_path):
    root = write_tree(tmp_path / "tree", TREE)
    cache = LintCache(tmp_path / "cache")
    baseline = tmp_path / "baseline.json"
    cold = lint_with(root, cache, baseline_path=baseline)
    assert not cold.ok
    baseline.write_text(
        json.dumps(
            {
                "schema": "repro-lint-baseline-v1",
                "entries": [
                    {"fingerprint": f.fingerprint} for f in cold.active
                ],
            }
        )
    )
    warm = lint_with(root, cache, baseline_path=baseline)
    assert cache.stats.run_hits == 1
    assert warm.ok
    assert len(warm.baselined) == len(cold.active)


def test_suppressions_survive_the_cache_round_trip(tmp_path):
    files = dict(TREE)
    files["repro/mod.py"] = (
        "import numpy as np\n\n"
        "def draw():\n"
        "    return np.random.normal(0.0, 1.0)  # lint: disable=DET001\n"
    )
    root = write_tree(tmp_path / "tree", files)
    cache = LintCache(tmp_path / "cache")
    cold = lint_with(root, cache)
    warm = lint_with(root, cache)
    assert cache.stats.run_hits == 1
    assert cold.ok and warm.ok
    assert len(warm.suppressed) == len(cold.suppressed) == 1


def test_key_helpers_are_content_sensitive():
    cfg = config_digest(LintConfig())
    assert cfg != config_digest(LintConfig(exclude=("x.py",)))
    sha = source_digest("x = 1\n")
    assert sha != source_digest("x = 2\n")
    assert file_key(sha, cfg, ("DET001",)) != file_key(
        sha, cfg, ("DET001", "DET002")
    )
    entries = [("repro/a.py", sha)]
    assert run_key(entries, cfg, ("DET001",), None) != run_key(
        entries, cfg, ("DET001",), ("repro/a",)
    )


def test_cli_cache_flags(tmp_path, capsys):
    root = write_tree(tmp_path / "tree", TREE)
    cache_dir = tmp_path / "cli-cache"
    common = [
        "lint",
        "--root",
        str(root),
        "--select",
        "DET001",
        "--no-baseline",
        "--cache-dir",
        str(cache_dir),
    ]
    assert main(common) == 1
    assert (cache_dir / "runs").is_dir()
    assert main(common) == 1  # warm: same verdict
    capsys.readouterr()
    # --no-cache wins over --cache/--cache-dir.
    assert main(common + ["--no-cache"]) == 1
    capsys.readouterr()
