"""The JSONL finding record schema (DESIGN §17).

Every record carries ``rule/path/line/col/severity/message/fingerprint/
suppressed/baselined``; ``end_line``/``end_col`` bound the offending
span when the AST knows it; cross-module rules attach ``meta.chain``,
the resolved call chain as ``relpath:qualname`` steps.  Downstream
tooling (the incremental cache, report consumers, editors) parses these
records, so the shape is a contract, not an implementation detail.
"""

from __future__ import annotations

import json

from repro.lint import run_lint
from repro.lint.findings import Finding

from .conftest import write_tree

REQUIRED_KEYS = {
    "rule",
    "path",
    "line",
    "col",
    "severity",
    "message",
    "fingerprint",
    "suppressed",
    "baselined",
}

DET_TREE = {
    "repro/mod.py": """
    import numpy as np

    def draw():
        return np.random.normal(0.0, 1.0)
    """,
}

ASYNC_TREE = {
    "repro/mux/driver.py": """
    from .helper import backoff

    async def pump():
        backoff()
    """,
    "repro/mux/helper.py": """
    import time

    def backoff():
        time.sleep(0.1)
    """,
}


def one_finding(tmp_path, files, select):
    root = write_tree(tmp_path / "tree", files)
    report = run_lint(root, select=select, baseline_path=False)
    assert len(report.active) == 1, report.render_text()
    return report.active[0]


def test_record_has_required_keys_and_span_end(tmp_path):
    finding = one_finding(tmp_path, DET_TREE, ["DET001"])
    record = json.loads(finding.as_jsonl())
    assert REQUIRED_KEYS <= set(record)
    # The violating expression spans one line; ast end positions are
    # 1-based-inclusive line, 0-based-exclusive column.
    assert record["end_line"] == record["line"]
    assert record["end_col"] > record["col"]
    assert record["fingerprint"] == finding.fingerprint


def test_unknown_span_end_is_omitted():
    record = Finding(
        rule="X001", path="repro/a.py", line=3, col=0, message="m"
    ).as_dict()
    assert "end_line" not in record and "end_col" not in record


def test_cross_module_finding_carries_the_resolved_chain(tmp_path):
    finding = one_finding(tmp_path, ASYNC_TREE, ["ASYNC001"])
    record = json.loads(finding.as_jsonl())
    chain = record["meta"]["chain"]
    # Steps render as relpath:qualname from the async root down to the
    # function containing the blocking call.
    assert chain[0] == "repro/mux/driver.py:pump"
    assert chain[-1] == "repro/mux/helper.py:backoff"
    # The finding anchors at the blocking call, not the root.
    assert record["path"] == "repro/mux/helper.py"


def test_from_dict_round_trips_the_record(tmp_path):
    finding = one_finding(tmp_path, ASYNC_TREE, ["ASYNC001"])
    record = finding.as_dict()
    record["line_text"] = finding.line_text
    rebuilt = Finding.from_dict(record)
    assert rebuilt.as_dict() == finding.as_dict()
    # The fingerprint is recomputed from content, never trusted stored.
    assert rebuilt.fingerprint == finding.fingerprint


def test_jsonl_output_is_one_parseable_record_per_line(tmp_path):
    root = write_tree(tmp_path / "tree", DET_TREE)
    report = run_lint(root, select=["DET001", "DET002"], baseline_path=False)
    lines = report.render_jsonl().splitlines()
    assert len(lines) == len(report.findings)
    for line in lines:
        record = json.loads(line)
        assert REQUIRED_KEYS <= set(record)
        # Deterministic serialisation: keys are sorted.
        assert list(record) == sorted(record)
