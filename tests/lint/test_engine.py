"""Engine semantics: suppressions, baseline, fingerprints, reports."""

from __future__ import annotations

import json

from repro.lint import finding_fingerprint, load_baseline, write_baseline

from .conftest import codes

VIOLATION = {
    "repro/mod.py": """
    import numpy as np

    def draw():
        return np.random.normal(0.0, 1.0)
    """
}


class TestSuppressions:
    def test_code_specific_suppression(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import numpy as np

                def draw():
                    return np.random.normal()  # lint: disable=DET001
                """
            }
        )
        report = lint(select=["DET001"])
        assert codes(report) == []
        assert len(report.suppressed) == 1
        assert report.ok

    def test_bare_suppression_covers_all_codes(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import time

                def stamp():
                    return time.time()  # lint: disable
                """
            }
        )
        assert codes(lint(select=["DET002"])) == []

    def test_wrong_code_does_not_suppress(self, make_tree):
        _, lint = make_tree(
            {
                "repro/mod.py": """
                import time

                def stamp():
                    return time.time()  # lint: disable=DET001
                """
            }
        )
        assert codes(lint(select=["DET002"])) == ["DET002"]


class TestBaseline:
    def test_baselined_finding_does_not_fail(self, make_tree, tmp_path):
        _, lint = make_tree(VIOLATION)
        report = lint(select=["DET001"])
        assert not report.ok
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, report.active)
        again = lint(select=["DET001"], baseline_path=baseline)
        assert again.ok
        assert len(again.baselined) == 1

    def test_fingerprint_survives_line_moves(self):
        assert finding_fingerprint(
            "DET001", "repro/mod.py", "  x = np.random.normal()  "
        ) == finding_fingerprint(
            "DET001", "repro/mod.py", "x = np.random.normal()"
        )

    def test_fingerprint_changes_with_content(self):
        assert finding_fingerprint(
            "DET001", "repro/mod.py", "x = np.random.normal()"
        ) != finding_fingerprint(
            "DET001", "repro/mod.py", "x = np.random.rand()"
        )

    def test_missing_or_foreign_baseline_ignored(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(bad) == set()
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": "other", "entries": []}))
        assert load_baseline(foreign) == set()


class TestReports:
    def test_jsonl_report_roundtrip(self, make_tree, tmp_path):
        _, lint = make_tree(VIOLATION)
        report = lint(select=["DET001"])
        out = tmp_path / "findings.jsonl"
        report.write_report(out)
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert len(records) == 1
        assert records[0]["rule"] == "DET001"
        assert records[0]["path"] == "repro/mod.py"
        assert records[0]["fingerprint"]

    def test_text_rendering_has_location_and_summary(self, make_tree):
        _, lint = make_tree(VIOLATION)
        text = lint(select=["DET001"]).render_text()
        assert "repro/mod.py:5:" in text
        assert "DET001" in text
        assert "1 finding(s)" in text

    def test_parse_error_fails_the_gate(self, make_tree):
        _, lint = make_tree({"repro/broken.py": "def oops(:\n    pass\n"})
        report = lint()
        assert report.parse_errors
        assert not report.ok

    def test_paths_filter_limits_per_file_rules(self, make_tree):
        _, lint = make_tree(
            {
                "repro/a.py": """
                import numpy as np

                def draw():
                    return np.random.rand()
                """,
                "repro/sub/b.py": """
                import numpy as np

                def draw():
                    return np.random.rand()
                """,
            }
        )
        report = lint(select=["DET001"], paths=["repro/sub/"])
        assert [f.path for f in report.active] == ["repro/sub/b.py"]
