"""CACHE001 fixtures: key coverage and schema-bump discipline.

Includes the property test required by the issue: adding *any*
synthetic field to a fingerprinted params dataclass without a
CHAIN_SCHEMA bump trips CACHE001.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import LintConfig, run_lint, write_schema_manifest

from .conftest import codes, write_tree

#: A minimal chain whose public entry point covers all its physics
#: parameters via the key builder.
COVERED_CHAIN = """
from .exec.cache import CHAIN_SCHEMA, fingerprint
from .exec.timing import stage


def chain_key(machine, profile, rng):
    return fingerprint(CHAIN_SCHEMA, machine, profile, rng)


def run_chain(machine, profile, rng):
    key = chain_key(machine, profile, rng)
    with stage("pmu"):
        return machine, profile, key
"""

#: Same chain, but the entry point grew a physics knob (``gain``) that
#: never reaches fingerprint() - the drift CACHE001 exists to catch.
UNCOVERED_CHAIN = """
from .exec.cache import CHAIN_SCHEMA, fingerprint
from .exec.timing import stage


def chain_key(machine, profile, rng):
    return fingerprint(CHAIN_SCHEMA, machine, profile, rng)


def run_chain(machine, profile, rng, gain):
    key = chain_key(machine, profile, rng)
    with stage("pmu"):
        return machine, profile, gain, key
"""

CACHE_MODULE = """
CHAIN_SCHEMA = "chain-v1"


def fingerprint(*objs):
    return "digest"
"""

TIMING_MODULE = """
from contextlib import contextmanager


@contextmanager
def stage(name):
    yield
"""

PARAMS_MODULE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class SimProfile:
    name: str
    time_scale: float = 1.0
    freq_scale: float = 1.0
"""

FIXTURE_CONFIG = LintConfig(
    tracked_dataclasses=(("repro/params.py", "SimProfile"),),
)


def base_files(chain: str = COVERED_CHAIN, params: str = PARAMS_MODULE):
    return {
        "repro/chain.py": chain,
        "repro/exec/cache.py": CACHE_MODULE,
        "repro/exec/timing.py": TIMING_MODULE,
        "repro/params.py": params,
    }


def build(tmp_path, files):
    root = write_tree(tmp_path / "tree", files)
    write_schema_manifest(root, FIXTURE_CONFIG)
    return root


def lint(root):
    return run_lint(
        root, FIXTURE_CONFIG, select=["CACHE001"], baseline_path=False
    )


class TestKeyCoverage:
    def test_covered_chain_clean(self, tmp_path):
        root = build(tmp_path, base_files())
        assert codes(lint(root)) == []

    def test_uncovered_parameter_flagged(self, tmp_path):
        root = build(tmp_path, base_files(chain=UNCOVERED_CHAIN))
        report = lint(root)
        assert codes(report) == ["CACHE001"]
        assert "'gain'" in report.active[0].message

    def test_fingerprint_without_schema_tag_flagged(self, tmp_path):
        files = base_files()
        files["repro/chain.py"] = files["repro/chain.py"].replace(
            "fingerprint(CHAIN_SCHEMA, machine, profile, rng)",
            "fingerprint(machine, profile, rng)",
        )
        root = build(tmp_path, files)
        report = lint(root)
        assert codes(report) == ["CACHE001"]
        assert "CHAIN_SCHEMA" in report.active[0].message

    def test_coverage_through_keyword_arguments(self, tmp_path):
        chain = COVERED_CHAIN.replace(
            "chain_key(machine, profile, rng)",
            "chain_key(machine, profile=profile, rng=rng)",
        )
        root = build(
            tmp_path,
            {**base_files(), "repro/chain.py": chain},
        )
        assert codes(lint(root)) == []


class TestSchemaDiscipline:
    def test_unchanged_tree_clean(self, tmp_path):
        root = build(tmp_path, base_files())
        assert codes(lint(root)) == []

    def test_missing_manifest_flagged(self, tmp_path):
        root = write_tree(tmp_path / "tree", base_files())
        report = lint(root)
        assert codes(report) == ["CACHE001"]
        assert "manifest missing" in report.active[0].message

    def test_field_added_without_bump_flagged(self, tmp_path):
        root = build(tmp_path, base_files())
        params = root / "repro/params.py"
        params.write_text(
            params.read_text().replace(
                "    freq_scale: float = 1.0\n",
                "    freq_scale: float = 1.0\n    extra: float = 0.0\n",
            )
        )
        report = lint(root)
        assert codes(report) == ["CACHE001"]
        assert "without a CHAIN_SCHEMA bump" in report.active[0].message

    def test_field_added_with_bump_asks_for_refresh(self, tmp_path):
        root = build(tmp_path, base_files())
        params = root / "repro/params.py"
        params.write_text(
            params.read_text().replace(
                "    freq_scale: float = 1.0\n",
                "    freq_scale: float = 1.0\n    extra: float = 0.0\n",
            )
        )
        cache = root / "repro/exec/cache.py"
        cache.write_text(cache.read_text().replace("chain-v1", "chain-v2"))
        report = lint(root)
        assert codes(report) == ["CACHE001"]
        assert "--update-schema" in report.active[0].message

    def test_refresh_after_bump_clean(self, tmp_path):
        root = build(tmp_path, base_files())
        cache = root / "repro/exec/cache.py"
        cache.write_text(cache.read_text().replace("chain-v1", "chain-v2"))
        write_schema_manifest(root, FIXTURE_CONFIG)
        assert codes(lint(root)) == []

    def test_manifest_contents(self, tmp_path):
        root = build(tmp_path, base_files())
        manifest = json.loads(
            (root / FIXTURE_CONFIG.schema_manifest).read_text()
        )
        assert manifest["chain_schema"] == "chain-v1"
        assert manifest["dataclasses"]["repro/params.py:SimProfile"] == [
            "name",
            "time_scale",
            "freq_scale",
        ]


@settings(max_examples=25, deadline=None)
@given(
    field_name=st.from_regex(r"[a-z][a-z0-9_]{0,12}", fullmatch=True).filter(
        lambda s: s not in {"name", "time_scale", "freq_scale"}
    ),
    annotation=st.sampled_from(["float", "int", "str", "bool"]),
)
def test_any_synthetic_field_without_bump_trips(
    tmp_path_factory, field_name, annotation
):
    """Property: whatever the field is called or typed, silently adding
    it to a fingerprinted params dataclass is a CACHE001 finding."""
    tmp_path = tmp_path_factory.mktemp("cache001")
    root = build(tmp_path, base_files())
    params = root / "repro/params.py"
    params.write_text(
        params.read_text().replace(
            "    freq_scale: float = 1.0\n",
            f"    freq_scale: float = 1.0\n    {field_name}: {annotation}\n",
        )
    )
    report = lint(root)
    assert "CACHE001" in codes(report)
    assert any(field_name in f.message for f in report.active)
