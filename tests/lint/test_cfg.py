"""Unit tests for the per-function CFG (repro.lint.cfg)."""

from __future__ import annotations

import ast

from repro.lint.cfg import (
    EXIT,
    RAISE_EXIT,
    build_cfg,
    dataflow_paths_reach,
    own_nodes,
    statements_of,
    walk_own,
)


def cfg_of(src: str):
    fn = ast.parse(src).body[0]
    return build_cfg(fn)


def acquire_release_live(cfg, acquire_name="acquire", release_name="release"):
    """Run the may-analysis with gen=calls to acquire, kill=release."""

    def call_names(stmt):
        return {
            n.func.id
            for n in walk_own(stmt)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        }

    gen = {}
    kill = {}
    for node_id, stmt in statements_of(cfg).items():
        names = call_names(stmt)
        if acquire_name in names:
            gen[node_id] = {"r"}
        if release_name in names:
            kill[node_id] = {"r"}
    return dataflow_paths_reach(cfg, gen, kill)


def test_straight_line_reaches_exit():
    cfg = cfg_of(
        """
def f():
    acquire()
    work()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" in live[EXIT]


def test_release_on_all_paths_is_dead_at_exit():
    cfg = cfg_of(
        """
def f(flag):
    acquire()
    if flag:
        release()
    else:
        release()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" not in live[EXIT]


def test_release_on_one_branch_leaks():
    cfg = cfg_of(
        """
def f(flag):
    acquire()
    if flag:
        release()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" in live[EXIT]


def test_finally_covers_exception_edges():
    cfg = cfg_of(
        """
def f():
    acquire()
    try:
        work()
    finally:
        release()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" not in live[EXIT]
    assert "r" not in live[RAISE_EXIT]


def test_exception_edge_escapes_late_release():
    # work() can raise before release(): the obligation is live on the
    # RAISE_EXIT path even though the normal path discharges it.
    cfg = cfg_of(
        """
def f():
    acquire()
    try:
        work()
        release()
    except ValueError:
        raise
"""
    )
    live = acquire_release_live(cfg)
    assert "r" not in live[EXIT]
    assert "r" in live[RAISE_EXIT]


def test_exception_edges_use_pre_state():
    # The acquire is *inside* the try: on the exception edge out of the
    # acquiring statement itself the obligation has not happened yet,
    # but any later statement in the try body carries it.
    cfg = cfg_of(
        """
def f():
    try:
        acquire()
        work()
    except ValueError:
        pass
"""
    )
    live = acquire_release_live(cfg)
    # The handler swallows: the normal exit after the handler still
    # carries the obligation picked up after acquire().
    assert "r" in live[EXIT]


def test_loop_back_edge_propagates():
    cfg = cfg_of(
        """
def f(items):
    for item in items:
        acquire()
    release()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" not in live[EXIT]


def test_while_loop_zero_iterations_path():
    cfg = cfg_of(
        """
def f(flag):
    while flag:
        acquire()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" in live[EXIT]


def test_return_routes_through_finally():
    cfg = cfg_of(
        """
def f():
    acquire()
    try:
        return 1
    finally:
        release()
"""
    )
    live = acquire_release_live(cfg)
    assert "r" not in live[EXIT]


def test_own_nodes_excludes_nested_body():
    stmt = ast.parse(
        """
if flag:
    release()
"""
    ).body[0]
    names = {
        n.func.id
        for n in walk_own(stmt)
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
    }
    assert "release" not in names  # body call belongs to its own node
    assert any(isinstance(n, ast.Name) for n in walk_own(stmt))  # the test expr


def test_statements_of_covers_every_real_statement():
    cfg = cfg_of(
        """
def f(flag):
    a = 1
    if flag:
        b = 2
    return a
"""
    )
    kinds = {type(stmt).__name__ for stmt in statements_of(cfg).values()}
    assert {"Assign", "If", "Return"} <= kinds


def test_own_nodes_of_plain_statement_is_whole_subtree():
    stmt = ast.parse("x = f(g(1))").body[0]
    calls = [n for n in walk_own(stmt) if isinstance(n, ast.Call)]
    assert len(calls) == 2
    assert own_nodes(stmt) == [stmt]
