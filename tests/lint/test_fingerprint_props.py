"""Property tests: finding fingerprints are content addresses.

The baseline workflow depends on one invariant - a finding's
fingerprint hashes ``rule | path | stripped line text`` and nothing
else - so editing *around* an accepted violation (inserting or deleting
unrelated lines, re-indenting the file) must never resurrect it from
the baseline, and moving the file must.
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint import LintConfig, run_lint
from repro.lint.findings import finding_fingerprint

from .conftest import write_tree

#: The one DET001 violation whose fingerprint the properties track.
VIOLATION = "    return np.random.normal(0.0, 1.0)"

HEADER = [
    "import numpy as np",
    "",
    "def draw():",
]

FOOTER = [
    "",
    "def unrelated(x):",
    "    y = x + 1",
    "    return y",
]

#: Innocuous module-level lines an edit may sprinkle anywhere between
#: the header and the violation's function, or after the footer.  Each
#: is a complete statement, so any drawn combination still parses.
FILLER = st.sampled_from(
    [
        "# a comment",
        "",
        "CONSTANT = 7",
        "OTHER = 'text'",
        "PAIR = (1, 2)",
    ]
)

_counter = itertools.count()


def lint_violation(tmp_path, lines):
    root = write_tree(
        tmp_path / f"t{next(_counter)}",
        {"repro/mod.py": "\n".join(lines) + "\n"},
    )
    report = run_lint(
        root,
        config=LintConfig(),
        select=["DET001"],
        baseline_path=False,
    )
    assert [f.rule for f in report.active] == ["DET001"]
    return report.active[0]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    before=st.lists(FILLER, max_size=4),
    after=st.lists(FILLER, max_size=4),
)
def test_fingerprint_survives_unrelated_insertions(tmp_path, before, after):
    baseline = lint_violation(
        tmp_path, HEADER + [VIOLATION] + FOOTER
    ).fingerprint
    edited = lint_violation(
        tmp_path,
        ["import numpy as np", ""]
        + before
        + ["def draw():", VIOLATION]
        + FOOTER
        + after,
    )
    assert edited.fingerprint == baseline
    # The location moved; the identity did not.
    assert edited.line_text.strip() == VIOLATION.strip()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(drop_footer=st.booleans(), extra_blank=st.integers(0, 3))
def test_fingerprint_survives_deletions(tmp_path, drop_footer, extra_blank):
    full = lint_violation(
        tmp_path, HEADER + [VIOLATION] + [""] * extra_blank + FOOTER
    ).fingerprint
    trimmed_lines = HEADER + [VIOLATION] + ([] if drop_footer else FOOTER)
    trimmed = lint_violation(tmp_path, trimmed_lines).fingerprint
    assert trimmed == full


@settings(max_examples=20, deadline=None)
@given(
    rule=st.sampled_from(["DET001", "DET002", "ASYNC001"]),
    path=st.sampled_from(["repro/a.py", "repro/b.py"]),
    pad_left=st.text(alphabet=" \t", max_size=6),
    pad_right=st.text(alphabet=" \t", max_size=6),
)
def test_fingerprint_is_whitespace_insensitive(
    rule, path, pad_left, pad_right
):
    body = "x = np.random.normal()"
    padded = finding_fingerprint(rule, path, pad_left + body + pad_right)
    assert padded == finding_fingerprint(rule, path, body)
    # ...but rule and path are part of the identity.
    assert padded != finding_fingerprint(rule, "repro/other.py", body)
    other_rule = "DET002" if rule == "DET001" else "DET001"
    assert padded != finding_fingerprint(other_rule, path, body)


def test_renamed_file_changes_the_fingerprint(tmp_path):
    lines = HEADER + [VIOLATION] + FOOTER
    a = lint_violation(tmp_path, lines)
    root = write_tree(
        tmp_path / "renamed",
        {"repro/moved.py": "\n".join(lines) + "\n"},
    )
    report = run_lint(
        root, config=LintConfig(), select=["DET001"], baseline_path=False
    )
    assert report.active[0].fingerprint != a.fingerprint
