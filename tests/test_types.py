"""Tests for the shared value types."""

import numpy as np
import pytest

from repro.types import (
    ActivityTrace,
    BurstTrain,
    Interval,
    IQCapture,
    Keystroke,
    PiecewiseConstant,
    PowerStateTrace,
    StateResidency,
)


class TestInterval:
    def test_duration(self):
        assert Interval(1.0, 3.5).duration == pytest.approx(2.5)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends before"):
            Interval(2.0, 1.0)

    def test_rejects_level_out_of_range(self):
        with pytest.raises(ValueError, match="level"):
            Interval(0.0, 1.0, level=1.5)


class TestActivityTrace:
    def test_rejects_overlapping_intervals(self):
        with pytest.raises(ValueError, match="overlap"):
            ActivityTrace([Interval(0, 2), Interval(1, 3)], 3.0)

    def test_rejects_duration_shorter_than_content(self):
        with pytest.raises(ValueError, match="duration"):
            ActivityTrace([Interval(0, 2)], 1.0)

    def test_levels_at_inside_and_outside(self):
        trace = ActivityTrace([Interval(1, 2, 0.5)], 3.0)
        levels = trace.levels_at(np.array([0.5, 1.5, 2.5]))
        assert levels.tolist() == [0.0, 0.5, 0.0]

    def test_levels_at_empty_trace(self):
        trace = ActivityTrace([], 1.0)
        assert trace.levels_at(np.array([0.5])).tolist() == [0.0]

    def test_merge_sums_and_clips(self):
        a = ActivityTrace([Interval(0, 2, 0.7)], 4.0)
        b = ActivityTrace([Interval(1, 3, 0.7)], 4.0)
        merged = a.merged_with(b)
        mids = np.array([0.5, 1.5, 2.5, 3.5])
        assert merged.levels_at(mids) == pytest.approx([0.7, 1.0, 0.7, 0.0])

    def test_merge_preserves_duration(self):
        a = ActivityTrace([Interval(0, 1)], 5.0)
        b = ActivityTrace([Interval(2, 3)], 3.5)
        assert a.merged_with(b).duration == 5.0

    def test_busy_time_is_level_weighted(self):
        trace = ActivityTrace([Interval(0, 2, 0.5), Interval(3, 4, 1.0)], 5.0)
        assert trace.busy_time == pytest.approx(2.0)


class TestPiecewiseConstant:
    def test_at_samples_correct_segment(self):
        pc = PiecewiseConstant(np.array([0.0, 1.0]), np.array([5.0, 7.0]), 2.0)
        assert pc.at(np.array([0.5, 1.5])) == pytest.approx([5.0, 7.0])

    def test_at_clamps_before_first_segment(self):
        pc = PiecewiseConstant(np.array([0.0]), np.array([3.0]), 1.0)
        assert pc.at(np.array([-1.0])) == pytest.approx([3.0])

    def test_segments_include_final_duration(self):
        pc = PiecewiseConstant(np.array([0.0, 1.0]), np.array([1.0, 2.0]), 4.0)
        assert pc.segments() == [(0.0, 1.0, 1.0), (1.0, 4.0, 2.0)]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            PiecewiseConstant(np.array([0.0]), np.array([1.0, 2.0]), 1.0)

    def test_rejects_nonzero_first_start(self):
        with pytest.raises(ValueError, match="t=0"):
            PiecewiseConstant(np.array([0.5]), np.array([1.0]), 1.0)

    def test_rejects_unsorted_starts(self):
        with pytest.raises(ValueError, match="sorted"):
            PiecewiseConstant(np.array([0.0, 2.0, 1.0]), np.ones(3), 3.0)


class TestPowerStateTrace:
    def _trace(self):
        return PowerStateTrace(
            [StateResidency(0, 1, 0, 0), StateResidency(1, 3, 7, 6)], 3.0
        )

    def test_current_draw_uses_lookup(self):
        load = self._trace().current_draw(lambda p, c: 10.0 if c == 0 else 0.1)
        assert load.at(np.array([0.5, 2.0])) == pytest.approx([10.0, 0.1])

    def test_time_in_c_state(self):
        assert self._trace().time_in_c_state(6) == pytest.approx(2.0)


class TestBurstTrain:
    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="sorted"):
            BurstTrain(
                np.array([1.0, 0.5]),
                np.ones(2),
                np.ones(2),
                2.0,
                1e-6,
            )

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(ValueError, match="align"):
            BurstTrain(np.array([0.5]), np.ones(2), np.ones(2), 2.0, 1e-6)

    def test_count(self):
        train = BurstTrain(np.array([0.1, 0.2]), np.ones(2), np.ones(2), 1.0, 1e-6)
        assert train.count == 2


class TestIQCapture:
    def test_duration(self):
        cap = IQCapture(np.zeros(2400, dtype=np.complex64), 2400.0, 1e6)
        assert cap.duration == pytest.approx(1.0)

    def test_baseband_offset_signs(self):
        cap = IQCapture(np.zeros(8, dtype=np.complex64), 2400.0, 1.5e6)
        assert cap.baseband_offset(1.0e6) == pytest.approx(-0.5e6)
        assert cap.baseband_offset(2.0e6) == pytest.approx(0.5e6)


class TestKeystroke:
    def test_dwell(self):
        ks = Keystroke(1.0, 1.08, "a")
        assert ks.dwell == pytest.approx(0.08)

    def test_rejects_release_before_press(self):
        with pytest.raises(ValueError, match="released before"):
            Keystroke(1.0, 0.9, "a")
