"""Tests for analysis windows."""

import numpy as np
import pytest

from repro.dsp.windows import get_window, hann, rectangular


class TestHann:
    def test_starts_at_zero(self):
        assert hann(64)[0] == pytest.approx(0.0)

    def test_periodic_form_never_reaches_end(self):
        w = hann(64)
        assert w[-1] < 1.0

    def test_peak_near_center(self):
        w = hann(64)
        assert np.argmax(w) == 32

    def test_length_one(self):
        assert hann(1).tolist() == [1.0]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            hann(0)


class TestRectangular:
    def test_all_ones(self):
        assert np.all(rectangular(16) == 1.0)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            rectangular(0)


class TestLookup:
    def test_names(self):
        assert np.array_equal(get_window("hann", 8), hann(8))
        assert np.array_equal(get_window("rect", 8), rectangular(8))
        assert np.array_equal(get_window("boxcar", 8), rectangular(8))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("blackman-harris-42", 8)
