"""Tests for filtering helpers."""

import numpy as np
import pytest

from repro.dsp.filters import edge_kernel, lowpass, moving_average


class TestMovingAverage:
    def test_constant_preserved(self):
        x = np.full(50, 3.0)
        assert np.allclose(moving_average(x, 7), 3.0)

    def test_length_one_is_copy(self):
        x = np.arange(5.0)
        out = moving_average(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99
        assert x[0] == 0.0

    def test_smooths_impulse(self):
        x = np.zeros(21)
        x[10] = 1.0
        out = moving_average(x, 5)
        assert out[10] == pytest.approx(0.2)

    def test_edges_renormalised(self):
        x = np.ones(10)
        out = moving_average(x, 5)
        assert out[0] == pytest.approx(1.0)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)


class TestLowpass:
    def test_dc_preserved(self):
        x = np.ones(500)
        out = lowpass(x, 0.2)
        assert out[100:-100].mean() == pytest.approx(1.0, rel=0.01)

    def test_high_frequency_attenuated(self):
        n = np.arange(2000)
        x = np.cos(np.pi * 0.9 * n)
        out = lowpass(x, 0.2)
        assert np.abs(out[200:-200]).max() < 0.05

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            lowpass(np.ones(10), 1.5)


class TestEdgeKernel:
    def test_shape_and_balance(self):
        k = edge_kernel(10)
        assert k.size == 10
        assert k.sum() == pytest.approx(0.0)
        assert np.all(k[:5] == 1.0)
        assert np.all(k[5:] == -1.0)

    def test_odd_length_rounds_down(self):
        assert edge_kernel(9).size == 8

    def test_convolution_peaks_positive_on_rising_edge(self):
        y = np.concatenate([np.zeros(50), np.ones(50)])
        response = np.convolve(y, edge_kernel(20), mode="same")
        assert response[np.argmax(np.abs(response))] > 0
        assert abs(np.argmax(response) - 50) <= 2

    def test_falling_edge_gives_negative_peak(self):
        y = np.concatenate([np.ones(50), np.zeros(50)])
        # Ignore the convolution's own boundary transient at the start.
        response = np.convolve(y, edge_kernel(20), mode="same")[15:]
        assert response.min() < 0
        assert abs(np.argmin(response) + 15 - 50) <= 2

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            edge_kernel(1)
