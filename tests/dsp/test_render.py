"""Tests for ASCII rendering helpers."""

import numpy as np
import pytest

from repro.dsp.render import LEVELS, ascii_lane, ascii_spectrogram, sparkline
from repro.dsp.stft import stft


class TestAsciiLane:
    def test_width(self):
        assert len(ascii_lane(np.random.default_rng(0).random(500), 40)) == 40

    def test_constant_high_is_solid_under_max_norm(self):
        lane = ascii_lane(np.full(100, 5.0), 20, normalise="max")
        assert set(lane) == {LEVELS[-1]}

    def test_minmax_stretches_texture(self):
        values = np.concatenate([np.full(50, 5.0), np.full(50, 5.1)])
        lane = ascii_lane(values, 20, normalise="minmax")
        assert LEVELS[0] in lane and LEVELS[-1] in lane

    def test_zeros_render_dark(self):
        lane = ascii_lane(np.zeros(100), 20)
        assert set(lane) == {LEVELS[0]}

    def test_square_wave_shows_both_extremes(self):
        values = np.concatenate([np.zeros(50), np.ones(50)])
        lane = ascii_lane(values, 10)
        assert lane[0] == LEVELS[0]
        assert lane[-1] == LEVELS[-1]

    def test_empty_input(self):
        assert ascii_lane(np.empty(0), 10) == " " * 10


class TestAsciiSpectrogram:
    def _spec(self):
        fs = 8000.0
        t = np.arange(4096) / fs
        tone = np.exp(2j * np.pi * 1000.0 * t)
        tone[: tone.size // 2] = 0
        return stft(tone, fs, fft_size=128, hop=64)

    def test_dimensions(self):
        art = ascii_spectrogram(self._spec(), 500, 1500, width=30, height=4)
        lines = art.split("\n")
        assert len(lines) >= 4
        assert all(len(line) == 32 for line in lines[1:-1])  # |...| framing

    def test_tone_region_brighter_after_onset(self):
        art = ascii_spectrogram(self._spec(), 900, 1100, width=30, height=1)
        body = art.split("\n")[1].strip("|")
        dark = sum(1 for c in body[:10] if c == " ")
        bright = sum(1 for c in body[-10:] if c != " ")
        assert dark > 5
        assert bright > 5

    def test_out_of_band_raises(self):
        with pytest.raises(ValueError, match="bins"):
            ascii_spectrogram(self._spec(), 50000, 60000)


class TestSparkline:
    def test_length(self):
        assert len(sparkline(np.arange(100), width=12)) == 12
