"""Tests for peak detection and bimodal thresholding."""

import numpy as np
import pytest

from repro.dsp.detection import bimodal_threshold, histogram_modes, local_maxima


class TestLocalMaxima:
    def test_finds_isolated_peaks(self):
        x = np.zeros(100)
        x[[20, 60]] = 1.0
        assert local_maxima(x).tolist() == [20, 60]

    def test_min_distance_thins(self):
        x = np.zeros(100)
        x[20] = 1.0
        x[24] = 0.9
        peaks = local_maxima(x, min_distance=10)
        assert peaks.tolist() == [20]

    def test_min_height_filters(self):
        x = np.zeros(100)
        x[20] = 1.0
        x[60] = 0.1
        peaks = local_maxima(x, min_height=0.5)
        assert peaks.tolist() == [20]

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            local_maxima(np.zeros(10), min_distance=0)


class TestHistogramModes:
    def test_two_well_separated_modes(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.normal(1.0, 0.1, 500), rng.normal(5.0, 0.1, 500)]
        )
        _, _, modes = histogram_modes(values)
        assert len(modes) >= 2
        tops = sorted(modes[:2])
        assert tops[0] == pytest.approx(1.0, abs=0.3)
        assert tops[1] == pytest.approx(5.0, abs=0.3)

    def test_boundary_mode_detected(self):
        # A very tight lobe in the lowest bin must still register (the
        # MacBook regression: find_peaks skips boundary bins).
        rng = np.random.default_rng(1)
        values = np.concatenate(
            [np.full(500, 0.001), rng.normal(100.0, 10.0, 500)]
        )
        _, _, modes = histogram_modes(values)
        assert min(modes[:2]) < 10.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram_modes(np.empty(0))


class TestBimodalThreshold:
    def test_threshold_between_modes(self):
        rng = np.random.default_rng(2)
        values = np.concatenate(
            [rng.normal(1.0, 0.2, 400), rng.normal(9.0, 0.5, 400)]
        )
        thr = bimodal_threshold(values)
        assert 2.0 < thr < 8.0

    def test_separates_perfectly_separable_lobes(self):
        rng = np.random.default_rng(3)
        lo = rng.normal(1.0, 0.05, 300)
        hi = rng.normal(10.0, 0.3, 300)
        thr = bimodal_threshold(np.concatenate([lo, hi]))
        assert np.all(lo < thr)
        assert np.all(hi > thr)

    def test_unbalanced_lobes(self):
        rng = np.random.default_rng(4)
        values = np.concatenate(
            [rng.normal(1.0, 0.1, 900), rng.normal(10.0, 0.3, 100)]
        )
        thr = bimodal_threshold(values)
        assert 2.0 < thr < 9.0

    def test_unimodal_fallback_is_finite_and_central(self):
        rng = np.random.default_rng(5)
        values = rng.normal(5.0, 0.001, 500)
        thr = bimodal_threshold(values)
        assert 4.9 < thr < 5.1

    def test_tight_zero_lobe_macbook_regression(self):
        # Reproduces the exact failure observed on the MacBook-2018 link:
        # zeros tightly clustered near 3, ones spread 8000-9500.
        rng = np.random.default_rng(6)
        zeros = rng.uniform(2.7, 3.3, 90)
        ones = rng.uniform(7900, 9600, 110)
        thr = bimodal_threshold(np.concatenate([zeros, ones]))
        assert 10 < thr < 7900
