"""Tests for the STFT."""

import numpy as np
import pytest

from repro.dsp.stft import frame_count, frame_times, stft


class TestShapes:
    def test_frame_count(self):
        spec = stft(np.zeros(1000, dtype=complex), 1e3, fft_size=128, hop=32)
        assert spec.magnitudes.shape[0] == (1000 - 128) // 32 + 1

    def test_complex_input_two_sided_axis(self):
        spec = stft(np.zeros(256, dtype=complex), 1e3, fft_size=64, hop=16)
        assert spec.frequencies[0] == pytest.approx(-500.0)
        assert spec.magnitudes.shape[1] == 64

    def test_real_input_one_sided_axis(self):
        spec = stft(np.zeros(256), 1e3, fft_size=64, hop=16)
        assert spec.frequencies[0] == 0.0
        assert spec.magnitudes.shape[1] == 33

    def test_too_short_input_raises(self):
        with pytest.raises(ValueError, match="fft_size"):
            stft(np.zeros(10), 1e3, fft_size=64)

    def test_bad_hop_raises(self):
        with pytest.raises(ValueError):
            stft(np.zeros(256), 1e3, fft_size=64, hop=0)


class TestFramingContract:
    """Pin the canonical framing helpers shared with repro.stream.

    The streaming STFT promises to emit exactly the frames the batch
    call produces; these cases pin :func:`frame_count` for the awkward
    lengths where an off-by-one would silently skew every streaming
    boundary (final partial frame, exact fit, hop > fft_size).
    """

    @pytest.mark.parametrize(
        "n,fft_size,hop,want",
        [
            (0, 64, 16, 0),       # empty stream
            (63, 64, 16, 0),      # one short of a single frame
            (64, 64, 16, 1),      # exactly one frame
            (79, 64, 16, 1),      # partial tail: not a frame
            (80, 64, 16, 2),      # tail completes the second frame
            (1000, 128, 32, 28),  # the shape test's case, pinned
            (1000, 128, 1000, 1), # hop beyond the data: one frame
            (264, 64, 100, 3),    # hop > fft_size with exact last fit
            (263, 64, 100, 2),    # hop > fft_size, one sample short
            (64, 64, 1, 1),       # maximum overlap, minimum data
            (65, 64, 1, 2),
        ],
    )
    def test_frame_count_pinned(self, n, fft_size, hop, want):
        assert frame_count(n, fft_size, hop) == want

    @pytest.mark.parametrize(
        "n,fft_size,hop",
        [(64, 64, 16), (80, 64, 16), (1000, 128, 32), (264, 64, 100),
         (65, 64, 1), (129, 128, 7)],
    )
    def test_batch_stft_obeys_frame_count(self, n, fft_size, hop):
        spec = stft(
            np.zeros(n, dtype=complex), 1e3, fft_size=fft_size, hop=hop
        )
        assert spec.magnitudes.shape[0] == frame_count(n, fft_size, hop)
        np.testing.assert_array_equal(
            spec.times,
            frame_times(0, spec.magnitudes.shape[0], fft_size, hop, 1e3),
        )

    def test_frame_count_validation(self):
        with pytest.raises(ValueError):
            frame_count(100, 1, 4)
        with pytest.raises(ValueError):
            frame_count(100, 64, 0)

    def test_frame_times_offset_run(self):
        # A run starting mid-stream gets the same floats the batch
        # time axis carries at those indices.
        full = frame_times(0, 10, 64, 16, 1e3)
        tail = frame_times(6, 4, 64, 16, 1e3)
        np.testing.assert_array_equal(tail, full[6:])


class TestContent:
    def test_tone_lands_in_right_bin(self):
        fs = 1e4
        t = np.arange(4096) / fs
        tone = np.exp(2j * np.pi * 1.25e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        hot = np.argmax(spec.magnitudes.mean(axis=0))
        assert spec.frequencies[hot] == pytest.approx(1.25e3, abs=fs / 256)

    def test_negative_frequency_resolved(self):
        fs = 1e4
        t = np.arange(4096) / fs
        tone = np.exp(-2j * np.pi * 2e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        hot = np.argmax(spec.magnitudes.mean(axis=0))
        assert spec.frequencies[hot] == pytest.approx(-2e3, abs=fs / 256)

    def test_onset_time_localised(self):
        fs = 1e4
        n = 8192
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 1e3 * t)
        tone[: n // 2] = 0.0
        spec = stft(tone, fs, fft_size=256, hop=64)
        lane = spec.magnitudes[:, spec.nearest_bin(1e3)]
        onset_frame = np.argmax(lane > lane.max() / 2)
        assert spec.times[onset_frame] == pytest.approx(n / 2 / fs, abs=0.005)

    def test_band_energy_sums_bins(self):
        fs = 1e4
        t = np.arange(2048) / fs
        tone = np.exp(2j * np.pi * 1e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        bins = spec.band_indices(900, 1100)
        assert bins.size >= 1
        assert np.all(spec.band_energy(bins) > 0)

    def test_frame_rate(self):
        spec = stft(np.zeros(1024, dtype=complex), 2e3, fft_size=128, hop=32)
        assert spec.frame_rate == pytest.approx(2e3 / 32)
