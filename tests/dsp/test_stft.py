"""Tests for the STFT."""

import numpy as np
import pytest

from repro.dsp.stft import stft


class TestShapes:
    def test_frame_count(self):
        spec = stft(np.zeros(1000, dtype=complex), 1e3, fft_size=128, hop=32)
        assert spec.magnitudes.shape[0] == (1000 - 128) // 32 + 1

    def test_complex_input_two_sided_axis(self):
        spec = stft(np.zeros(256, dtype=complex), 1e3, fft_size=64, hop=16)
        assert spec.frequencies[0] == pytest.approx(-500.0)
        assert spec.magnitudes.shape[1] == 64

    def test_real_input_one_sided_axis(self):
        spec = stft(np.zeros(256), 1e3, fft_size=64, hop=16)
        assert spec.frequencies[0] == 0.0
        assert spec.magnitudes.shape[1] == 33

    def test_too_short_input_raises(self):
        with pytest.raises(ValueError, match="fft_size"):
            stft(np.zeros(10), 1e3, fft_size=64)

    def test_bad_hop_raises(self):
        with pytest.raises(ValueError):
            stft(np.zeros(256), 1e3, fft_size=64, hop=0)


class TestContent:
    def test_tone_lands_in_right_bin(self):
        fs = 1e4
        t = np.arange(4096) / fs
        tone = np.exp(2j * np.pi * 1.25e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        hot = np.argmax(spec.magnitudes.mean(axis=0))
        assert spec.frequencies[hot] == pytest.approx(1.25e3, abs=fs / 256)

    def test_negative_frequency_resolved(self):
        fs = 1e4
        t = np.arange(4096) / fs
        tone = np.exp(-2j * np.pi * 2e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        hot = np.argmax(spec.magnitudes.mean(axis=0))
        assert spec.frequencies[hot] == pytest.approx(-2e3, abs=fs / 256)

    def test_onset_time_localised(self):
        fs = 1e4
        n = 8192
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 1e3 * t)
        tone[: n // 2] = 0.0
        spec = stft(tone, fs, fft_size=256, hop=64)
        lane = spec.magnitudes[:, spec.nearest_bin(1e3)]
        onset_frame = np.argmax(lane > lane.max() / 2)
        assert spec.times[onset_frame] == pytest.approx(n / 2 / fs, abs=0.005)

    def test_band_energy_sums_bins(self):
        fs = 1e4
        t = np.arange(2048) / fs
        tone = np.exp(2j * np.pi * 1e3 * t)
        spec = stft(tone, fs, fft_size=256, hop=64)
        bins = spec.band_indices(900, 1100)
        assert bins.size >= 1
        assert np.all(spec.band_energy(bins) > 0)

    def test_frame_rate(self):
        spec = stft(np.zeros(1024, dtype=complex), 2e3, fft_size=128, hop=32)
        assert spec.frame_rate == pytest.approx(2e3 / 32)
