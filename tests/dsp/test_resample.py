"""Tests for rate-conversion helpers."""

import numpy as np
import pytest

from repro.dsp.resample import block_reduce, linear_resample


class TestLinearResample:
    def test_endpoints_preserved(self):
        x = np.array([1.0, 5.0, 2.0])
        out = linear_resample(x, 7)
        assert out[0] == 1.0
        assert out[-1] == 2.0

    def test_upsampling_interpolates(self):
        out = linear_resample(np.array([0.0, 1.0]), 5)
        assert out.tolist() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_single_value_broadcast(self):
        assert linear_resample(np.array([3.0]), 4).tolist() == [3.0] * 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            linear_resample(np.empty(0), 4)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            linear_resample(np.ones(4), 0)


class TestBlockReduce:
    def test_mean_reduction(self):
        out = block_reduce(np.array([1.0, 3.0, 5.0, 7.0]), 2)
        assert out.tolist() == [2.0, 6.0]

    def test_trailing_partial_block_dropped(self):
        out = block_reduce(np.arange(5.0), 2)
        assert out.size == 2

    def test_custom_reducer(self):
        out = block_reduce(np.array([1.0, 9.0, 2.0, 8.0]), 2, reduce=np.max)
        assert out.tolist() == [9.0, 8.0]

    def test_block_larger_than_input(self):
        assert block_reduce(np.ones(3), 10).size == 0

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            block_reduce(np.ones(4), 0)
