"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.align import align_bits
from repro.core.coding import (
    ParityCode,
    bits_to_bytes,
    bytes_to_bits,
    hamming_decode,
    hamming_encode,
)
from repro.core.sync import FrameFormat, strip_header
from repro.core.timing import fill_missing_starts, signaling_time
from repro.dsp.detection import bimodal_threshold
from repro.types import ActivityTrace, Interval, PiecewiseConstant
from repro.vrm.buck import BuckConverter, BuckDesign

bit_lists = st.lists(st.integers(0, 1), min_size=0, max_size=120)


class TestCodingProperties:
    @given(data=st.binary(min_size=0, max_size=64))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(bits=bit_lists)
    def test_hamming_clean_roundtrip(self, bits):
        decoded, corrected = hamming_decode(hamming_encode(bits))
        n = len(bits)
        assert decoded[:n].tolist() == list(bits)
        assert corrected == 0

    @given(
        bits=st.lists(st.integers(0, 1), min_size=4, max_size=60),
        error_pos=st.integers(0, 10_000),
    )
    def test_hamming_corrects_any_single_error(self, bits, error_pos):
        code = hamming_encode(bits)
        corrupted = code.copy()
        corrupted[error_pos % code.size] ^= 1
        decoded, corrected = hamming_decode(corrupted)
        assert decoded[: len(bits)].tolist() == list(bits)
        assert corrected == 1

    @given(bits=bit_lists, block=st.integers(1, 16))
    def test_parity_roundtrip(self, bits, block):
        code = ParityCode(block_size=block)
        decoded, errors = code.decode(code.encode(bits))
        assert decoded[: len(bits)].tolist() == list(bits)
        assert errors == 0


class TestAlignmentProperties:
    @given(tx=bit_lists, rx=bit_lists)
    def test_counts_reconcile_lengths(self, tx, rx):
        m = align_bits(tx, rx)
        # Matched pairs seen from both sides must agree.
        assert len(tx) - m.deletions == len(rx) - m.insertions
        assert m.bit_errors <= min(len(tx), len(rx))

    @given(tx=bit_lists)
    def test_self_alignment_is_perfect(self, tx):
        m = align_bits(tx, tx)
        assert m.bit_errors == m.insertions == m.deletions == 0

    @given(tx=st.lists(st.integers(0, 1), min_size=2, max_size=80),
           drop=st.integers(0, 1000))
    def test_single_deletion_detected(self, tx, drop):
        rx = list(tx)
        del rx[drop % len(tx)]
        m = align_bits(tx, rx)
        assert m.bit_errors + m.insertions + m.deletions == 1
        assert m.deletions == 1

    @given(tx=bit_lists, rx=bit_lists)
    def test_symmetry_of_indels(self, tx, rx):
        forward = align_bits(tx, rx)
        backward = align_bits(rx, tx)
        assert forward.insertions == backward.deletions
        assert forward.deletions == backward.insertions
        assert forward.bit_errors == backward.bit_errors


class TestFramingProperties:
    @given(payload=st.lists(st.integers(0, 1), min_size=1, max_size=80))
    def test_strip_header_inverts_frame(self, payload):
        fmt = FrameFormat()
        recovered = strip_header(fmt.frame(payload), fmt)
        assert recovered is not None
        assert recovered.tolist() == list(payload)


class TestTimingProperties:
    @given(
        period=st.floats(5.0, 50.0),
        n=st.integers(5, 60),
    )
    def test_signaling_time_exact_on_clean_starts(self, period, n):
        starts = np.arange(n) * period
        assert signaling_time(starts) == pytest.approx(period, rel=1e-6)

    @given(
        period=st.floats(10.0, 40.0),
        n=st.integers(6, 40),
        missing=st.integers(1, 5),
    )
    def test_fill_missing_restores_count(self, period, n, missing):
        starts = np.arange(n) * period
        drop = np.unique((np.arange(missing) * 7 + 1) % (n - 2) + 1)
        kept = np.delete(starts, drop)
        filled = fill_missing_starts(kept, period, int(starts[-1]) + 1)
        assert filled.size == n


class TestThresholdProperties:
    @given(
        lo=st.floats(0.1, 10.0),
        separation=st.floats(5.0, 100.0),
        n=st.integers(30, 200),
    )
    def test_bimodal_threshold_separates_two_clusters(
        self, lo, separation, n
    ):
        rng = np.random.default_rng(0)
        hi = lo * separation
        values = np.concatenate(
            [
                rng.normal(lo, lo * 0.02, n),
                rng.normal(hi, hi * 0.02, n),
            ]
        )
        thr = bimodal_threshold(values)
        assert lo < thr < hi


class TestPhysicsProperties:
    @settings(deadline=None)
    @given(current=st.floats(0.05, 16.0))
    def test_buck_charge_conservation(self, current):
        design = BuckDesign(switching_frequency_hz=1e6)
        buck = BuckConverter(design, rng=np.random.default_rng(0))
        duration = 1e-3
        load = PiecewiseConstant(np.array([0.0]), np.array([current]), duration)
        bursts = buck.simulate(load)
        drawn = current * duration
        delivered = bursts.charges.sum() if bursts.count else 0.0
        slack = max(design.fire_charge_c, current * design.period_s)
        assert abs(drawn - delivered) <= slack + 1e-12

    @settings(deadline=None)
    @given(
        spans=st.lists(
            st.tuples(st.floats(0.0, 0.9), st.floats(0.01, 0.1)),
            min_size=0,
            max_size=8,
        )
    )
    def test_merged_traces_never_exceed_unity(self, spans):
        intervals = []
        cursor = 0.0
        for offset, length in spans:
            start = cursor + offset * 0.05
            intervals.append(Interval(start, start + length, 1.0))
            cursor = start + length
        duration = (intervals[-1].end if intervals else 0.0) + 1.0
        a = ActivityTrace(intervals, duration)
        b = ActivityTrace(list(intervals), duration)
        merged = a.merged_with(b)
        times = np.linspace(0, duration * 0.999, 50)
        assert np.all(merged.levels_at(times) <= 1.0 + 1e-12)
